//! Branch-and-bound exact MinBusy solver ([`branch_and_bound`]): the backend behind
//! [`busytime::Algorithm::ExactBnB`], for instances above the subset-DP ceiling.
//!
//! # Search shape
//!
//! Busy time is additive across connected components of the interval overlap graph
//! (machines never profit from mixing jobs of different components), so the solver
//! decomposes the instance and runs one search per component, sharing a single node
//! budget.  Within a component it branches on jobs in canonical order — earliest start
//! first, ties by longest first — and each node assigns the next job either to one of
//! the machines already opened (one child per *distinct* machine with a free thread)
//! or to exactly one fresh machine.  Opening machines in branch order and deduplicating
//! machines with identical content removes the machine-permutation symmetry without
//! losing any schedule.
//!
//! Because starts are non-decreasing along a branch, the greedy per-thread placement of
//! [`MachineState::first_free_thread`] is a *complete* capacity check: it fails exactly
//! when the job would push some machine past `g` simultaneous jobs (left-endpoint
//! greedy coloring of an interval graph is optimal).
//!
//! # Bound stack
//!
//! * **Warm start** — the incumbent opens as the better of the paper's FirstFit
//!   (canonical longest-first order) and FirstFit in branch order, then *polished* by a
//!   strictly-improving single-job relocation descent ([`polish`]).  Every new
//!   incumbent the search finds is polished the same way: on instances whose optimum
//!   meets the clique relaxation, landing the incumbent on it ends the search
//!   immediately, so incumbent quality is a pruning lever, not cosmetics.
//! * **Static clique relaxation** — `∫ ⌈depth(t)/g⌉ dt` over the whole component,
//!   computed once from the depth profile; no schedule can beat it (Observation 2.1
//!   generalized pointwise).
//! * **Committed cost** — the sum of the open machines' busy times, maintained
//!   incrementally from [`MachineState::insert`] deltas; machine unions only grow, so
//!   it never decreases along a branch.
//! * **Incremental pricing** — `∫ max(busy(t), ⌈depth(t)/g⌉) dt`, where `busy(t)`
//!   counts machines whose current job union covers `t`: every open machine stays busy
//!   wherever it is busy now, and the unassigned jobs still force `⌈depth/g⌉` machines
//!   pointwise.  This dominates both cheaper bounds and is only priced when they fail
//!   to prune.
//!
//! # Budget semantics
//!
//! The node budget ([`busytime::ExactBudget`]) is deterministic; the optional
//! wall-clock cap is for interactive use.  When the budget runs out the search
//! *abandons* the open subtrees but remembers the smallest lower bound among them, so
//! the reported pair stays sound: `lower = max(static, min(upper, abandoned))` per
//! component, summed across components.  Bounds are therefore valid even on
//! exhaustion — `lower ≤ OPT ≤ upper` always holds.

use std::time::Instant;

use busytime::minbusy::{first_fit, first_fit_in_order};
use busytime::{Duration, ExactBudget, ExactOutcome, Instance, MachineState, Schedule};
use busytime_interval::{union, Interval};

/// Exact MinBusy by branch-and-bound over job→machine assignments.
///
/// Returns [`ExactOutcome::Optimal`] when the search finishes within `budget`, and
/// [`ExactOutcome::Exhausted`] — with a sound `lower ≤ OPT ≤ upper` pair and the best
/// incumbent schedule — when it does not.  Any instance size is accepted; unlike the
/// subset DP there is no hard job-count ceiling, only the budget.
pub fn branch_and_bound(instance: &Instance, budget: &ExactBudget) -> ExactOutcome {
    branch_and_bound_with_visitor(instance, budget, None)
}

/// What the search exposes at every explored node (test hook for bound soundness; the
/// fields are only read by the `cfg(test)` visitors).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct NodeView<'a> {
    /// Busy time already committed to the open machines.
    pub committed: Duration,
    /// The node's lower bound on *any* completion of this partial assignment.
    pub lower: Duration,
    /// Component-local ids of the not-yet-assigned jobs, in branch order.
    pub unassigned: &'a [usize],
}

/// A per-node callback: `(component instance, node view)`.
pub(crate) type NodeVisitor<'a> = dyn FnMut(&Instance, &NodeView<'_>) + 'a;

/// [`branch_and_bound`] with an optional per-node visitor (used by the bound-soundness
/// proptests to cross-check every explored node against the subset DP).
pub(crate) fn branch_and_bound_with_visitor(
    instance: &Instance,
    budget: &ExactBudget,
    mut visitor: Option<&mut NodeVisitor<'_>>,
) -> ExactOutcome {
    let n = instance.len();
    if n == 0 {
        return ExactOutcome::Optimal {
            schedule: Schedule::empty(0),
            cost: Duration::ZERO,
            nodes: 0,
        };
    }
    let deadline = budget
        .max_millis
        .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
    let mut nodes = 0u64;
    let mut schedule = Schedule::empty(n);
    let mut total_cost = 0i64;
    let mut total_lower = 0i64;
    let mut all_optimal = true;
    let mut machine_offset = 0usize;
    for ids in instance.connected_components() {
        let (comp, mapping) = instance.sub_instance(&ids);
        let reborrowed: Option<&mut NodeVisitor<'_>> = visitor.as_deref_mut();
        let result = solve_component(&comp, budget.max_nodes, deadline, &mut nodes, reborrowed);
        for (local, &machine) in result.assignment.iter().enumerate() {
            schedule.assign(mapping[local], machine_offset + machine);
        }
        machine_offset += result.machines_used;
        total_cost += result.cost;
        total_lower += result.lower;
        all_optimal &= result.optimal;
    }
    let cost = Duration::new(total_cost);
    if all_optimal {
        ExactOutcome::Optimal {
            schedule,
            cost,
            nodes,
        }
    } else {
        ExactOutcome::Exhausted {
            incumbent: schedule,
            lower: Duration::new(total_lower),
            upper: cost,
            nodes,
        }
    }
}

/// The static clique relaxation `∫ ⌈depth(t)/g⌉ dt`: with `v[k-1]` the length covered
/// by at least `k` jobs, the integral telescopes to `v[0] + v[g] + v[2g] + …`.
fn clique_relaxation_lb(comp: &Instance) -> i64 {
    let per_depth = comp.depth_profile().per_depth_lengths();
    let g = comp.capacity();
    let mut total = 0i64;
    let mut k = 0usize;
    while k < per_depth.len() {
        total += per_depth[k].ticks();
        k += g;
    }
    total
}

/// Strictly-improving single-job relocation descent on a complete assignment: move any
/// job to an open machine (or a fresh one) whenever the move lowers total busy time,
/// until no such move exists.  Total cost is a strictly decreasing non-negative
/// integer, so the loop terminates.  Feasibility on the target is checked directly on
/// the interval multiset (`max_overlap ≤ g`), so no thread bookkeeping is needed.
///
/// Returns the polished cost; `assignment` is rewritten in place (machine ids stay
/// contiguous from 0).
fn polish(comp: &Instance, assignment: &mut [usize]) -> i64 {
    let g = comp.capacity();
    let machines = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); machines];
    for (job, &m) in assignment.iter().enumerate() {
        groups[m].push(job);
    }
    let busy = |group: &[usize]| -> i64 {
        let ivs: Vec<Interval> = group.iter().map(|&j| comp.job(j)).collect();
        union(&ivs).iter().map(|s| s.len().ticks()).sum()
    };
    let mut cost: i64 = groups.iter().map(|group| busy(group)).sum();
    loop {
        let mut improved = false;
        // A move rewrites `assignment[job]` and two `groups` entries mid-scan,
        // so indexed access is required here.
        #[allow(clippy::needless_range_loop)]
        for job in 0..comp.len() {
            let iv = comp.job(job);
            let source = assignment[job];
            let without: Vec<usize> = groups[source]
                .iter()
                .copied()
                .filter(|&j| j != job)
                .collect();
            let gain = busy(&groups[source]) - busy(&without);
            if gain <= 0 {
                continue;
            }
            // Cheapest feasible target strictly better than staying put; a fresh
            // machine (cost = the job's own length) is always feasible.
            let mut best: Option<(usize, i64)> = None;
            for (m, group) in groups.iter().enumerate() {
                if m == source {
                    continue;
                }
                let mut ivs: Vec<Interval> = group.iter().map(|&j| comp.job(j)).collect();
                ivs.push(iv);
                if busytime_interval::max_overlap(&ivs) > g {
                    continue;
                }
                let added = union(&ivs).iter().map(|s| s.len().ticks()).sum::<i64>() - busy(group);
                if best.is_none_or(|(_, b)| added < b) {
                    best = Some((m, added));
                }
            }
            let fresh = iv.len().ticks();
            let (target, added) = match best {
                Some((m, added)) if added <= fresh => (m, added),
                _ => (groups.len(), fresh),
            };
            if added < gain {
                if target == groups.len() {
                    groups.push(Vec::new());
                }
                groups[source].retain(|&j| j != job);
                groups[target].push(job);
                assignment[job] = target;
                cost -= gain - added;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    // Re-number machines contiguously (emptied sources leave holes).
    let mut next = 0usize;
    let mut remap: Vec<Option<usize>> = vec![None; groups.len()];
    for m in assignment.iter_mut() {
        let id = *remap[*m].get_or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        *m = id;
    }
    cost
}

/// One component's answer: a (possibly incumbent-only) assignment plus its bound pair.
struct ComponentResult {
    /// `assignment[local_job] = machine` (machines contiguous from 0).
    assignment: Vec<usize>,
    /// Cost of `assignment` (the component's upper bound).
    cost: i64,
    /// Proven lower bound on the component's optimum.
    lower: i64,
    /// Whether `cost` is the proven optimum.
    optimal: bool,
    /// Machines `assignment` uses.
    machines_used: usize,
}

fn solve_component(
    comp: &Instance,
    max_nodes: u64,
    deadline: Option<Instant>,
    nodes: &mut u64,
    visitor: Option<&mut NodeVisitor<'_>>,
) -> ComponentResult {
    let n = comp.len();
    let static_lb = clique_relaxation_lb(comp);

    // Branch order: earliest start first, ties longest first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&j| {
        let iv = comp.job(j);
        (iv.start().ticks(), -iv.end().ticks(), j)
    });

    // Warm start: the better of canonical FirstFit and FirstFit in branch order,
    // then relocation-polished — on components whose optimum meets the clique
    // relaxation this alone can end the search before it starts.
    let warm = [first_fit(comp), first_fit_in_order(comp, &order)]
        .into_iter()
        .min_by_key(|s| s.cost(comp))
        .expect("two warm-start candidates");
    let mut best_assignment: Vec<usize> = warm
        .assignment()
        .iter()
        .map(|m| m.expect("first_fit schedules every job"))
        .collect();
    let best_cost = polish(comp, &mut best_assignment);

    let mut search = Search {
        comp,
        capacity: comp.capacity(),
        order,
        depth_events: depth_events(comp),
        static_lb,
        machines: Vec::new(),
        assigned: Vec::new(),
        current: vec![usize::MAX; n],
        best_cost,
        best_assignment,
        nodes,
        max_nodes,
        deadline,
        exhausted: false,
        abandoned_lb: i64::MAX,
        visitor,
    };
    // The warm start may already match the relaxation; then no node needs exploring.
    if search.best_cost > static_lb {
        search.dfs(0, 0, static_lb);
    }

    let optimal = !search.exhausted;
    let cost = search.best_cost;
    let lower = if optimal {
        cost
    } else {
        // Subtrees pruned by bound cannot beat the incumbent; abandoned subtrees can,
        // but not below their own node bounds.
        static_lb.max(cost.min(search.abandoned_lb))
    };
    let assignment = search.best_assignment;
    let machines_used = assignment.iter().copied().max().map_or(0, |m| m + 1);
    ComponentResult {
        assignment,
        cost,
        lower,
        optimal,
        machines_used,
    }
}

/// `(+1 at start, -1 at end)` events of every job in the component, sorted.
fn depth_events(comp: &Instance) -> Vec<(i64, i32)> {
    let mut events = Vec::with_capacity(2 * comp.len());
    for iv in comp.jobs() {
        events.push((iv.start().ticks(), 1));
        events.push((iv.end().ticks(), -1));
    }
    events.sort_unstable();
    events
}

/// Depth-first search state for one component.
struct Search<'a, 'v> {
    comp: &'a Instance,
    capacity: usize,
    /// Jobs in branch order (non-decreasing starts).
    order: Vec<usize>,
    depth_events: Vec<(i64, i32)>,
    static_lb: i64,
    machines: Vec<MachineState>,
    /// Per machine, its assigned intervals in insertion (hence start) order — the
    /// ground truth for dominance checks and for the pricing bound's union segments.
    assigned: Vec<Vec<Interval>>,
    /// `current[job] = machine`, `usize::MAX` while unassigned.
    current: Vec<usize>,
    best_cost: i64,
    best_assignment: Vec<usize>,
    nodes: &'a mut u64,
    max_nodes: u64,
    deadline: Option<Instant>,
    exhausted: bool,
    /// Smallest node bound among subtrees abandoned by the budget (`i64::MAX` = none).
    abandoned_lb: i64,
    visitor: Option<&'a mut NodeVisitor<'v>>,
}

impl Search<'_, '_> {
    fn dfs(&mut self, depth: usize, committed: i64, node_lb: i64) {
        if self.exhausted
            || *self.nodes >= self.max_nodes
            || self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            self.exhausted = true;
            self.abandoned_lb = self.abandoned_lb.min(node_lb);
            return;
        }
        *self.nodes += 1;
        if let Some(visitor) = self.visitor.take() {
            visitor(
                self.comp,
                &NodeView {
                    committed: Duration::new(committed),
                    lower: Duration::new(node_lb),
                    unassigned: &self.order[depth..],
                },
            );
            self.visitor = Some(visitor);
        }
        if depth == self.order.len() {
            // Strictly better only: ties keep the earlier (canonical) incumbent.
            // Polishing the found leaf may tunnel below anything this DFS region
            // can reach, pruning the rest of it wholesale.
            if committed < self.best_cost {
                let mut polished = self.current.clone();
                let polished_cost = polish(self.comp, &mut polished);
                debug_assert!(polished_cost <= committed);
                self.best_cost = polished_cost;
                self.best_assignment = polished;
            }
            return;
        }
        let job = self.order[depth];
        let iv = self.comp.job(job);

        // Children: every *distinct* open machine with a free thread, plus one fresh
        // machine; cheapest marginal cost first so the dive improves the incumbent
        // early.  Machines with identical content (digest pre-filter, interval-list
        // confirmation) are interchangeable — only the first of each class branches.
        let mut children: Vec<(usize, usize, i64)> = Vec::with_capacity(self.machines.len() + 1);
        'candidates: for m in 0..self.machines.len() {
            let Some(thread) = self.machines[m].first_free_thread(iv) else {
                continue;
            };
            for &(earlier, _, _) in &children {
                if earlier != usize::MAX
                    && self.machines[earlier].digest() == self.machines[m].digest()
                    && self.assigned[earlier] == self.assigned[m]
                {
                    continue 'candidates;
                }
            }
            children.push((m, thread, self.machines[m].marginal_busy(iv).ticks()));
        }
        children.push((usize::MAX, 0, iv.len().ticks()));
        children.sort_by_key(|&(_, _, delta)| delta);

        for (machine, thread, delta) in children {
            let child_committed = committed + delta;
            if child_committed.max(self.static_lb) >= self.best_cost {
                continue;
            }
            let (machine, opened) = if machine == usize::MAX {
                self.machines.push(MachineState::new(self.capacity));
                self.assigned.push(Vec::new());
                (self.machines.len() - 1, true)
            } else {
                (machine, false)
            };
            let applied = self.machines[machine].insert(iv, thread);
            debug_assert_eq!(applied.ticks(), delta);
            self.assigned[machine].push(iv);
            self.current[job] = machine;

            let child_lb = self.pricing_lb();
            debug_assert!(child_lb >= child_committed && child_lb >= self.static_lb);
            if child_lb < self.best_cost {
                self.dfs(depth + 1, child_committed, child_lb);
            }

            self.current[job] = usize::MAX;
            self.assigned[machine].pop();
            self.machines[machine].remove(iv, thread);
            if opened {
                self.machines.pop();
                self.assigned.pop();
            }
        }
    }

    /// The incremental pricing bound `∫ max(busy(t), ⌈depth(t)/g⌉) dt`: open machines
    /// stay busy wherever their job unions already cover, and all jobs (assigned or
    /// not) still need `⌈depth/g⌉` machines pointwise.
    fn pricing_lb(&self) -> i64 {
        let mut events: Vec<(i64, i32, i32)> =
            self.depth_events.iter().map(|&(x, d)| (x, d, 0)).collect();
        for list in &self.assigned {
            for segment in union(list) {
                events.push((segment.start().ticks(), 0, 1));
                events.push((segment.end().ticks(), 0, -1));
            }
        }
        events.sort_unstable();
        let g = self.capacity as i64;
        let (mut depth, mut busy) = (0i64, 0i64);
        let mut prev = 0i64;
        let mut total = 0i64;
        let mut i = 0;
        let mut started = false;
        while i < events.len() {
            let x = events[i].0;
            if started && x > prev {
                let need = (depth + g - 1) / g;
                total += (x - prev) * need.max(busy);
            }
            while i < events.len() && events[i].0 == x {
                depth += i64::from(events[i].1);
                busy += i64::from(events[i].2);
                i += 1;
            }
            prev = x;
            started = true;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_minbusy_cost, MAX_EXACT_JOBS};
    use busytime_workload::{general_instance, seeded_rng};
    use proptest::prelude::*;

    fn solved(instance: &Instance) -> (Schedule, Duration, u64) {
        match branch_and_bound(instance, &ExactBudget::default()) {
            ExactOutcome::Optimal {
                schedule,
                cost,
                nodes,
            } => (schedule, cost, nodes),
            ExactOutcome::Exhausted { lower, upper, .. } => {
                panic!("default budget exhausted on a test instance ({lower} ≤ OPT ≤ {upper})")
            }
        }
    }

    #[test]
    fn trivial_instances() {
        let empty = Instance::from_ticks(&[], 2);
        let (schedule, cost, _) = solved(&empty);
        assert_eq!(cost, Duration::ZERO);
        assert!(schedule.is_empty());

        let single = Instance::from_ticks(&[(2, 9)], 3);
        let (schedule, cost, _) = solved(&single);
        assert_eq!(cost, Duration::new(7));
        schedule.validate_complete(&single).unwrap();
    }

    #[test]
    fn matches_known_optimal_clique_pairing() {
        let inst = Instance::from_ticks(&[(0, 20), (2, 18), (8, 12), (9, 11)], 2);
        let (schedule, cost, _) = solved(&inst);
        assert_eq!(cost, Duration::new(24));
        schedule.validate_complete(&inst).unwrap();
        assert_eq!(schedule.cost(&inst), cost);
    }

    #[test]
    fn decomposes_across_components() {
        // Two far-apart copies of the same component: cost doubles, search stays tiny.
        let inst = Instance::from_ticks(
            &[
                (0, 20),
                (2, 18),
                (8, 12),
                (1000, 1020),
                (1002, 1018),
                (1008, 1012),
            ],
            2,
        );
        let (schedule, cost, _) = solved(&inst);
        schedule.validate_complete(&inst).unwrap();
        assert_eq!(cost, exact_minbusy_cost(&inst));
    }

    #[test]
    fn solves_above_the_dp_ceiling() {
        // n > MAX_EXACT_JOBS: the DP would panic, B&B must still prove an optimum.
        let mut rng = seeded_rng(7);
        let inst = general_instance(&mut rng, MAX_EXACT_JOBS + 8, 3, 200, 30);
        let (schedule, cost, _) = solved(&inst);
        schedule.validate_complete(&inst).unwrap();
        assert_eq!(schedule.cost(&inst), cost);
        assert!(cost >= inst.lower_bound());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// B&B ≡ subset DP on random general instances small enough for the DP.
        #[test]
        fn differential_vs_subset_dp(seed in 0u64..5_000, n in 2usize..12, g in 1usize..5) {
            let mut rng = seeded_rng(seed);
            let inst = general_instance(&mut rng, n, g, 120, 25);
            let (schedule, cost, _) = solved(&inst);
            schedule.validate_complete(&inst).unwrap();
            prop_assert_eq!(cost, exact_minbusy_cost(&inst));
            prop_assert_eq!(schedule.cost(&inst), cost);
        }

        /// Every explored node's lower bound is sound: it never exceeds
        /// `committed + OPT(residual)`, which upper-bounds the node's best completion
        /// (finish the unassigned jobs on fresh machines).
        #[test]
        fn node_bounds_never_exceed_residual_optimum(seed in 0u64..5_000, n in 2usize..11, g in 1usize..4) {
            let mut rng = seeded_rng(seed);
            let inst = general_instance(&mut rng, n, g, 100, 20);
            let mut checked = 0u64;
            let mut visitor = |comp: &Instance, view: &NodeView<'_>| {
                let (residual, _) = comp.sub_instance(view.unassigned);
                let residual_opt = exact_minbusy_cost(&residual);
                assert!(
                    view.lower <= view.committed + residual_opt,
                    "node bound {} exceeds committed {} + residual OPT {}",
                    view.lower,
                    view.committed,
                    residual_opt
                );
                checked += 1;
            };
            let outcome =
                branch_and_bound_with_visitor(&inst, &ExactBudget::default(), Some(&mut visitor));
            if let ExactOutcome::Optimal { cost, nodes, .. } = outcome {
                prop_assert_eq!(cost, exact_minbusy_cost(&inst));
                prop_assert_eq!(checked, nodes);
            } else {
                prop_assert!(false, "default budget exhausted on a tiny instance");
            }
        }

        /// Starving the budget still yields a sound bracket: `lower ≤ OPT ≤ upper`,
        /// with the incumbent schedule valid and costing exactly `upper`.
        #[test]
        fn exhausted_budgets_keep_sound_bounds(seed in 0u64..5_000, n in 6usize..14, max_nodes in 0u64..6) {
            let mut rng = seeded_rng(seed);
            let inst = general_instance(&mut rng, n, 2, 150, 30);
            let opt = exact_minbusy_cost(&inst);
            let budget = ExactBudget { max_nodes, max_millis: None };
            match branch_and_bound(&inst, &budget) {
                ExactOutcome::Optimal { schedule, cost, .. } => {
                    // Warm start met the relaxation: optimal without any search.
                    prop_assert_eq!(cost, opt);
                    schedule.validate_complete(&inst).unwrap();
                }
                ExactOutcome::Exhausted { incumbent, lower, upper, .. } => {
                    prop_assert!(lower <= opt, "lower {} > OPT {}", lower, opt);
                    prop_assert!(opt <= upper, "OPT {} > upper {}", opt, upper);
                    incumbent.validate_complete(&inst).unwrap();
                    prop_assert_eq!(incumbent.cost(&inst), upper);
                }
            }
        }
    }
}
