//! The durability subsystem's differential suite.
//!
//! The central claim: **recovered state ≡ an uninterrupted run.**  A durable
//! registry is killed after `k` applied events and restarted; the rebuilt tenant
//! must hold exactly the scheduler a lone uninterrupted replay of those `k`
//! events produces (compared through the full serialized snapshot — placements,
//! pool buckets, counters, peak cost), and *continuing* the stream on the
//! restarted server must produce event-for-event the responses the
//! uninterrupted run gives.  The grid crosses every online policy with three
//! churn shapes and five crash points, with compaction both exercised and
//! quiescent.
//!
//! A proptest then attacks the journal itself: truncate or bit-flip the log at
//! a random offset and recovery must still come back with an exact *prefix* of
//! the acknowledged events — corruption may cost the tail, never the prefix and
//! never the process.

use std::path::{Path, PathBuf};

use busytime::online::{OnlinePolicy, OnlineScheduler, Trace};
use busytime_server::{DurabilityConfig, Engine, Registry, Request, Response};
use busytime_workload::{
    churn_trace_from_instance, general_instance, poisson_trace, seeded_rng, trace_from_instance,
    DurationModel,
};
use proptest::prelude::*;

/// A scratch data directory, fresh per call.
fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "busytime-durability-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, fsync_batch: usize, compact_threshold: u64) -> DurabilityConfig {
    DurabilityConfig {
        data_dir: dir.to_path_buf(),
        fsync_batch,
        compact_threshold,
    }
}

fn open(engine: &Engine, tenant: &str, capacity: usize, policy: OnlinePolicy) {
    let response = engine.call(Request::Open {
        tenant: tenant.into(),
        capacity,
        policy: Some(policy.name().to_string()),
    });
    assert!(response.is_ok(), "open failed: {response:?}");
}

/// The serialized snapshot — the complete observable state of a tenant.
fn server_snapshot(engine: &Engine, tenant: &str) -> String {
    match engine.call(Request::Snapshot {
        tenant: tenant.into(),
    }) {
        Response::Snapshot(snapshot) => serde_json::to_string(&snapshot).unwrap(),
        other => panic!("expected a snapshot for '{tenant}', got {other:?}"),
    }
}

fn oracle_snapshot(oracle: &OnlineScheduler) -> String {
    serde_json::to_string(&oracle.snapshot()).unwrap()
}

/// The three churn shapes of the grid: arrivals-only (a growing schedule),
/// full churn from the same instance (every job also departs), and a Poisson
/// process (interleaved arrivals/departures in time order).
fn churn_shapes(seed: u64, capacity: usize) -> Vec<(&'static str, Trace)> {
    let instance = general_instance(&mut seeded_rng(seed), 40, capacity, 300, 60);
    let poisson = poisson_trace(
        &mut seeded_rng(seed ^ 0x9e37),
        40,
        capacity,
        3.0,
        &DurationModel::HeavyTail { min: 1, max: 80 },
    );
    vec![
        ("arrivals-only", trace_from_instance(&instance)),
        ("churn", churn_trace_from_instance(&instance)),
        ("poisson", poisson),
    ]
}

#[test]
fn kill_and_restart_matches_uninterrupted_run_across_the_grid() {
    let capacity = 3;
    for (p, &policy) in OnlinePolicy::all().iter().enumerate() {
        for (shape, trace) in churn_shapes(42 + p as u64, capacity) {
            let total = trace.events.len();
            for crash_point in [0, 1, total / 2, total - 1, total] {
                // Odd crash points run with an aggressive compaction threshold
                // so recovery crosses snapshot boundaries; even ones keep the
                // whole history in the journal.
                let compact_threshold = if crash_point % 2 == 1 { 16 } else { 1 << 40 };
                let tag = format!("grid-{}-{shape}-{crash_point}", policy.name());
                let dir = temp_data_dir(&tag);
                let context = format!(
                    "policy={} shape={shape} crash_point={crash_point}/{total}",
                    policy.name()
                );

                // Phase 1: a durable server absorbs the first `crash_point`
                // events, then dies without any orderly flush beyond what each
                // acknowledgement already wrote.
                let registry =
                    Registry::with_durability(2, Some(config(&dir, 8, compact_threshold))).unwrap();
                let engine = registry.engine();
                open(&engine, "grid", capacity, policy);
                for event in &trace.events[..crash_point] {
                    let response = engine.call(Request::from_event("grid", event));
                    assert!(response.is_ok(), "{context}: pre-crash event failed");
                }
                drop(engine);
                registry.shutdown();

                // The uninterrupted oracle for the same prefix.
                let mut oracle = OnlineScheduler::new(capacity, policy).unwrap();
                for event in &trace.events[..crash_point] {
                    oracle.apply(event).unwrap();
                }

                // Phase 2: restart on the same directory; the rebuilt tenant
                // must equal the oracle, state for state.
                let registry =
                    Registry::with_durability(2, Some(config(&dir, 8, compact_threshold))).unwrap();
                let engine = registry.engine();
                assert_eq!(
                    server_snapshot(&engine, "grid"),
                    oracle_snapshot(&oracle),
                    "{context}: recovered state diverged from the uninterrupted run"
                );

                // Phase 3: the rest of the stream replays event-for-event
                // identically on the recovered server.
                for (i, event) in trace.events[crash_point..].iter().enumerate() {
                    let effect = oracle.apply(event).unwrap();
                    match engine.call(Request::from_event("grid", event)) {
                        Response::Event {
                            machine,
                            cost_delta,
                            cost,
                        } => assert_eq!(
                            (machine, cost_delta, cost),
                            (effect.machine, effect.cost_delta, effect.cost.ticks()),
                            "{context}: post-recovery event {i} diverged"
                        ),
                        other => panic!("{context}: post-recovery event {i} failed: {other:?}"),
                    }
                }
                assert_eq!(
                    server_snapshot(&engine, "grid"),
                    oracle_snapshot(&oracle),
                    "{context}: final state diverged after continuing the stream"
                );
                drop(engine);
                registry.shutdown();
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn recovery_survives_a_second_generation_of_restarts() {
    // Crash → recover → apply more → crash again → recover: the journal tail
    // written *after* a recovery replays just as well as one written fresh.
    let dir = temp_data_dir("double-restart");
    let trace = poisson_trace(
        &mut seeded_rng(7),
        60,
        2,
        2.0,
        &DurationModel::Uniform { min: 1, max: 40 },
    );
    let mut oracle = OnlineScheduler::new(2, OnlinePolicy::BestFit).unwrap();
    let (first, second) = trace.events.split_at(trace.events.len() / 3);

    let registry = Registry::with_durability(1, Some(config(&dir, 4, 1 << 40))).unwrap();
    let engine = registry.engine();
    open(&engine, "t", 2, OnlinePolicy::BestFit);
    for event in first {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
        oracle.apply(event).unwrap();
    }
    drop(engine);
    registry.shutdown();

    let registry = Registry::with_durability(1, Some(config(&dir, 4, 1 << 40))).unwrap();
    let engine = registry.engine();
    for event in second {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
        oracle.apply(event).unwrap();
    }
    drop(engine);
    registry.shutdown();

    let registry = Registry::with_durability(1, Some(config(&dir, 4, 1 << 40))).unwrap();
    let engine = registry.engine();
    assert_eq!(server_snapshot(&engine, "t"), oracle_snapshot(&oracle));
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn closed_tenants_stay_closed_and_restores_recover() {
    let dir = temp_data_dir("lifecycle");
    let registry = Registry::with_durability(2, Some(config(&dir, 1, 1 << 40))).unwrap();
    let engine = registry.engine();
    open(&engine, "keep", 2, OnlinePolicy::FirstFit);
    open(&engine, "drop", 2, OnlinePolicy::FirstFit);
    assert!(engine
        .call(Request::Arrive {
            tenant: "keep".into(),
            id: 1,
            job: (0, 10),
        })
        .is_ok());
    // Move "keep" to "moved" via snapshot/restore; restore is durable too.
    let Response::Snapshot(snapshot) = engine.call(Request::Snapshot {
        tenant: "keep".into(),
    }) else {
        panic!("expected a snapshot");
    };
    assert!(engine
        .call(Request::Restore {
            tenant: "moved".into(),
            snapshot,
        })
        .is_ok());
    assert!(engine
        .call(Request::Close {
            tenant: "drop".into()
        })
        .is_ok());
    let keep_state = server_snapshot(&engine, "keep");
    drop(engine);
    registry.shutdown();

    let registry = Registry::with_durability(2, Some(config(&dir, 1, 1 << 40))).unwrap();
    let engine = registry.engine();
    // The closed tenant did not resurrect; the opened and restored ones did.
    assert!(!engine
        .call(Request::Query {
            tenant: "drop".into()
        })
        .is_ok());
    assert_eq!(server_snapshot(&engine, "keep"), keep_state);
    assert_eq!(server_snapshot(&engine, "moved"), keep_state);
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_and_wal_stats_expose_the_log() {
    let dir = temp_data_dir("wal-ops");
    let registry = Registry::with_durability(1, Some(config(&dir, 64, 1 << 40))).unwrap();
    let engine = registry.engine();
    open(&engine, "t", 2, OnlinePolicy::FirstFit);
    for id in 0..10u64 {
        let s = id as i64 * 2;
        assert!(engine
            .call(Request::Arrive {
                tenant: "t".into(),
                id,
                job: (s, s + 5),
            })
            .is_ok());
    }
    let Response::Wal(stats) = engine.call(Request::WalStats { tenant: "t".into() }) else {
        panic!("expected wal stats");
    };
    assert_eq!(stats.generation, 0);
    assert_eq!(stats.log_records, 10);
    assert!(stats.log_bytes > 0 && stats.snapshot_bytes > 0);

    // Persist compacts: the journal empties, the generation advances, and the
    // snapshot absorbs the events.
    let Response::Wal(after) = engine.call(Request::Persist { tenant: "t".into() }) else {
        panic!("expected wal stats from persist");
    };
    assert_eq!(after.generation, 1);
    assert_eq!(after.log_records, 0);
    assert!(after.snapshot_bytes >= stats.snapshot_bytes);

    // State is untouched by compaction, including across a restart.
    let before_restart = server_snapshot(&engine, "t");
    drop(engine);
    registry.shutdown();
    let registry = Registry::with_durability(1, Some(config(&dir, 64, 1 << 40))).unwrap();
    let engine = registry.engine();
    assert_eq!(server_snapshot(&engine, "t"), before_restart);
    let Response::Wal(recovered) = engine.call(Request::WalStats { tenant: "t".into() }) else {
        panic!("expected wal stats after restart");
    };
    assert_eq!(recovered.generation, 1);
    assert_eq!(recovered.log_records, 0);
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // On an in-memory registry both operations refuse by name.
    let registry = Registry::new(1);
    let engine = registry.engine();
    open(&engine, "t", 1, OnlinePolicy::FirstFit);
    for request in [
        Request::Persist { tenant: "t".into() },
        Request::WalStats { tenant: "t".into() },
    ] {
        let Response::Error(error) = engine.call(request) else {
            panic!("expected an error on the in-memory registry");
        };
        assert!(error.message.contains("--data-dir"), "{error}");
    }
    drop(engine);
    registry.shutdown();
}

#[test]
fn automatic_compaction_keeps_the_journal_bounded() {
    let dir = temp_data_dir("auto-compact");
    let threshold = 8u64;
    let registry = Registry::with_durability(1, Some(config(&dir, 4, threshold))).unwrap();
    let engine = registry.engine();
    open(&engine, "t", 1, OnlinePolicy::BucketByLength);
    let trace = poisson_trace(
        &mut seeded_rng(11),
        50,
        1,
        2.0,
        &DurationModel::Uniform { min: 1, max: 30 },
    );
    let mut oracle = OnlineScheduler::new(1, OnlinePolicy::BucketByLength).unwrap();
    for event in &trace.events {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
        oracle.apply(event).unwrap();
    }
    let Response::Wal(stats) = engine.call(Request::WalStats { tenant: "t".into() }) else {
        panic!("expected wal stats");
    };
    assert!(
        stats.log_records < threshold,
        "compaction left {} records in the journal",
        stats.log_records
    );
    assert!(stats.generation > 0, "no compaction ever ran");
    drop(engine);
    registry.shutdown();

    // Recovery across many compaction boundaries still lands on the oracle.
    let registry = Registry::with_durability(1, Some(config(&dir, 4, threshold))).unwrap();
    let engine = registry.engine();
    assert_eq!(server_snapshot(&engine, "t"), oracle_snapshot(&oracle));
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Locate the single tenant's journal file in a data directory.
fn find_journal(dir: &Path) -> PathBuf {
    fn walk(dir: &Path, found: &mut Vec<PathBuf>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, found);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("journal.") && n.ends_with(".log"))
            {
                found.push(path.clone());
            }
        }
    }
    let mut found = Vec::new();
    walk(dir, &mut found);
    assert_eq!(
        found.len(),
        1,
        "expected exactly one journal, found {found:?}"
    );
    found.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Truncate or bit-flip the journal anywhere: recovery must come back with
    /// an exact prefix of the acknowledged events — never a panic, never a
    /// non-prefix state, and a re-scan after recovery finds a clean journal.
    #[test]
    fn corrupt_log_tail_recovers_the_intact_prefix(
        seed in 0u64..1_000_000,
        corrupt_at in 0usize..1_000_000,
        flip in any::<bool>(),
        bit in 0u8..8,
    ) {
        let tag = format!("torn-{seed}-{corrupt_at}-{flip}-{bit}");
        let dir = temp_data_dir(&tag);
        let trace = poisson_trace(
            &mut seeded_rng(seed),
            25,
            2,
            2.0,
            &DurationModel::Uniform { min: 1, max: 30 },
        );
        let registry = Registry::with_durability(1, Some(config(&dir, 64, 1 << 40))).unwrap();
        let engine = registry.engine();
        open(&engine, "t", 2, OnlinePolicy::FirstFit);
        for event in &trace.events {
            prop_assert!(engine.call(Request::from_event("t", event)).is_ok());
        }
        drop(engine);
        registry.shutdown();

        // Corrupt the journal at a position derived from the case inputs:
        // either chop the file there (torn write) or flip one bit (rot).
        let journal = find_journal(&dir);
        let mut bytes = std::fs::read(&journal).unwrap();
        let offset = corrupt_at % bytes.len().max(1);
        if flip {
            bytes[offset] ^= 1u8 << bit;
        } else {
            bytes.truncate(offset);
        }
        std::fs::write(&journal, &bytes).unwrap();

        // Recovery: never a panic, and the surviving state is some exact
        // prefix of the acknowledged events.
        let registry = Registry::with_durability(1, Some(config(&dir, 64, 1 << 40))).unwrap();
        let engine = registry.engine();
        let Response::Query(report) = engine.call(Request::Query { tenant: "t".into() }) else {
            panic!("the tenant did not recover at all");
        };
        let recovered_events = report.events;
        prop_assert!(recovered_events <= trace.events.len());
        let mut oracle = OnlineScheduler::new(2, OnlinePolicy::FirstFit).unwrap();
        for event in &trace.events[..recovered_events] {
            oracle.apply(event).unwrap();
        }
        prop_assert_eq!(server_snapshot(&engine, "t"), oracle_snapshot(&oracle));
        drop(engine);
        registry.shutdown();

        // The truncation was persisted: a second restart recovers the same
        // prefix without re-reporting corruption.
        let registry = Registry::with_durability(1, Some(config(&dir, 64, 1 << 40))).unwrap();
        let engine = registry.engine();
        prop_assert_eq!(server_snapshot(&engine, "t"), oracle_snapshot(&oracle));
        drop(engine);
        registry.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn an_unrecoverable_tenant_is_skipped_not_fatal() {
    // Destroy one tenant's snapshot beyond repair: the server must boot, skip
    // it, and serve the healthy tenant untouched.
    let dir = temp_data_dir("skip-unrecoverable");
    let registry = Registry::with_durability(1, Some(config(&dir, 1, 1 << 40))).unwrap();
    let engine = registry.engine();
    open(&engine, "healthy", 2, OnlinePolicy::FirstFit);
    open(&engine, "doomed", 2, OnlinePolicy::FirstFit);
    assert!(engine
        .call(Request::Arrive {
            tenant: "healthy".into(),
            id: 1,
            job: (0, 7),
        })
        .is_ok());
    let healthy = server_snapshot(&engine, "healthy");
    drop(engine);
    registry.shutdown();

    // Overwrite every one of the doomed tenant's snapshots with garbage.
    let doomed_dir = dir.join("doomed");
    for entry in std::fs::read_dir(&doomed_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.to_str().is_some_and(|p| p.contains("snapshot.")) {
            std::fs::write(&path, "not json at all").unwrap();
        }
    }

    let registry = Registry::with_durability(1, Some(config(&dir, 1, 1 << 40))).unwrap();
    let engine = registry.engine();
    assert_eq!(server_snapshot(&engine, "healthy"), healthy);
    assert!(!engine
        .call(Request::Query {
            tenant: "doomed".into(),
        })
        .is_ok());
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
