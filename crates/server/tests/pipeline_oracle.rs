//! Pipelining must be invisible in the results: a multi-tenant event stream driven
//! over a real loopback socket with a window of k requests in flight — in either
//! framing, against any shard count — must produce **exactly** the responses of a
//! lone per-tenant `OnlineScheduler` replay, event for event and in order.  This
//! pins the batched shard handoff (`Engine::call_many` coalesces a window's
//! requests into one channel send per shard) to the ordering contract: requests
//! for one tenant land on one shard and stay in arrival order, whatever the
//! coalescing.

use std::net::TcpListener;

use busytime::online::{OnlinePolicy, OnlineScheduler};
use busytime::report::SimulationReport;
use busytime_server::{serve, Client, Framing, Registry, Request, Response};
use busytime_workload::{multi_tenant_stream, seeded_rng, DurationModel};

/// Bind an ephemeral loopback port and serve a fresh registry on a background
/// thread; returns the address to connect to.
fn spawn_server(shards: usize) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let registry = Registry::new(shards);
    let engine = registry.engine();
    std::thread::spawn(move || {
        let _registry = registry;
        let _ = serve(listener, engine);
    });
    addr
}

/// A lone-scheduler oracle per tenant, replaying that tenant's projection of the
/// stream locally.
struct Oracle {
    scheduler: OnlineScheduler,
    trajectory: Vec<i64>,
}

impl Oracle {
    fn report(&self) -> String {
        let report = SimulationReport::from_scheduler(&self.scheduler, self.trajectory.clone());
        serde_json::to_string(&report).unwrap()
    }
}

#[test]
fn pipelined_wire_matches_local_replay_at_every_depth() {
    let model = DurationModel::HeavyTail { min: 1, max: 70 };
    let tenants = 4usize;
    let stream = multi_tenant_stream(&mut seeded_rng(414), tenants, 140, 2.0, &model);
    for shards in [1usize, 4] {
        let addr = spawn_server(shards);
        for framing in [Framing::Ndjson, Framing::Binary] {
            for depth in [1usize, 8, 64] {
                let context = format!("shards {shards}, {} depth {depth}", framing.name());
                let name = |t: usize| format!("tenant-{t}-{}-d{depth}-s{shards}", framing.name());
                let mut client = Client::connect_with(&addr, framing).unwrap();

                let mut oracles: Vec<Oracle> = (0..tenants)
                    .map(|t| {
                        let capacity = 1 + t % 3;
                        let policy = OnlinePolicy::all()[t % OnlinePolicy::all().len()];
                        client
                            .call_ok(&Request::Open {
                                tenant: name(t),
                                capacity,
                                policy: Some(policy.name().to_string()),
                            })
                            .unwrap_or_else(|e| panic!("{context}: open: {e}"));
                        Oracle {
                            scheduler: OnlineScheduler::new(capacity, policy).unwrap(),
                            trajectory: Vec::new(),
                        }
                    })
                    .collect();

                // The whole interleaved stream through one pipelined connection:
                // responses must come back in request order, each matching its
                // tenant's lone-scheduler effect exactly.
                let requests: Vec<Request> = stream
                    .iter()
                    .map(|(t, event)| Request::from_event(&name(*t), event))
                    .collect();
                let responses = client
                    .pipeline(&requests, depth)
                    .unwrap_or_else(|e| panic!("{context}: pipeline: {e}"));
                assert_eq!(responses.len(), requests.len(), "{context}");
                for (i, ((t, event), response)) in stream.iter().zip(&responses).enumerate() {
                    let oracle = &mut oracles[*t];
                    let effect = oracle.scheduler.apply(event).unwrap();
                    oracle.trajectory.push(effect.cost.ticks());
                    let Response::Event {
                        machine,
                        cost_delta,
                        cost,
                    } = response
                    else {
                        panic!("{context}: event {i}: unexpected response {response:?}");
                    };
                    assert_eq!(*machine, effect.machine, "{context}: event {i}");
                    assert_eq!(*cost_delta, effect.cost_delta, "{context}: event {i}");
                    assert_eq!(*cost, effect.cost.ticks(), "{context}: event {i}");
                }

                for (t, oracle) in oracles.iter().enumerate() {
                    let Response::Query(report) = client
                        .call_ok(&Request::Query { tenant: name(t) })
                        .unwrap_or_else(|e| panic!("{context}: query: {e}"))
                    else {
                        panic!("{context}: expected a query report");
                    };
                    assert_eq!(
                        serde_json::to_string(&report).unwrap(),
                        oracle.report(),
                        "{context}: final report for tenant {t}"
                    );
                }
            }
        }
    }
}

#[test]
fn drive_trace_is_depth_invariant() {
    // The high-level trace driver must hand back the identical report whatever
    // the pipeline depth or framing — depth 1 over NDJSON is the PR-5 behaviour.
    use busytime::online::{Event, Trace};
    use busytime::Interval;

    let trace = Trace::new(
        2,
        vec![
            Event::arrival(1, Interval::from_ticks(0, 10)),
            Event::arrival(2, Interval::from_ticks(4, 12)),
            Event::arrival(3, Interval::from_ticks(6, 14)),
            Event::departure(1),
            Event::arrival(4, Interval::from_ticks(9, 21)),
        ],
    );
    let addr = spawn_server(2);
    let mut reference = None;
    for framing in [Framing::Ndjson, Framing::Binary] {
        for depth in [1usize, 8, 64] {
            let mut client = Client::connect_with(&addr, framing).unwrap();
            let report = client
                .drive_trace_pipelined("depth-invariant", &trace, OnlinePolicy::FirstFit, depth)
                .unwrap();
            let json = serde_json::to_string(&report).unwrap();
            match &reference {
                None => reference = Some(json),
                Some(expected) => {
                    assert_eq!(&json, expected, "{} depth {depth} diverged", framing.name())
                }
            }
        }
    }
}
