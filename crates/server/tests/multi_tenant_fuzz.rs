//! Multi-tenant differential fuzz: a random interleaving of requests for many
//! tenants, driven through the sharded registry (the same code path the TCP
//! connections hit, minus the socket), must leave every tenant in **exactly** the
//! state of a lone `OnlineScheduler` replaying that tenant's projection of the
//! stream — whatever the shard count, and across snapshot/restore interruptions and
//! rejected requests sprinkled into the stream.

use busytime::online::{Event, OnlinePolicy, OnlineScheduler};
use busytime::report::SimulationReport;
use busytime_server::{Registry, Request, Response};
use busytime_workload::{multi_tenant_stream, seeded_rng, DurationModel};
use rand::Rng;

/// A lone-scheduler oracle for one tenant: the scheduler plus the trajectory the
/// server is documented to keep (restarting at a restore point).
struct Oracle {
    scheduler: OnlineScheduler,
    trajectory: Vec<i64>,
}

fn tenant_name(t: usize) -> String {
    format!("tenant-{t}")
}

/// The server's query report must equal the oracle's, field for field (compared via
/// the serialized JSON, the schema both sides share).
fn assert_reports_equal(server: &SimulationReport, oracle: &Oracle, context: &str) {
    let expected = SimulationReport::from_scheduler(&oracle.scheduler, oracle.trajectory.clone());
    assert_eq!(
        serde_json::to_string(server).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "{context}"
    );
}

fn query(engine: &busytime_server::Engine, tenant: &str) -> SimulationReport {
    match engine.call(Request::Query {
        tenant: tenant.to_string(),
    }) {
        Response::Query(report) => report,
        other => panic!("expected a query response for {tenant}, got {other:?}"),
    }
}

#[test]
fn random_interleaving_matches_single_tenant_replay() {
    let model = DurationModel::HeavyTail { min: 1, max: 90 };
    for (seed, shards, tenants) in [(2012u64, 1usize, 5usize), (7, 3, 6), (23, 4, 9)] {
        let mut rng = seeded_rng(seed ^ 0xfeed);
        let stream = multi_tenant_stream(&mut seeded_rng(seed), tenants, 60, 2.0, &model);

        let registry = Registry::new(shards);
        let engine = registry.engine();
        let mut oracles: Vec<Oracle> = (0..tenants)
            .map(|t| {
                let capacity = 1 + t % 4;
                let policy = OnlinePolicy::all()[t % OnlinePolicy::all().len()];
                assert!(engine
                    .call(Request::Open {
                        tenant: tenant_name(t),
                        capacity,
                        policy: Some(policy.name().to_string()),
                    })
                    .is_ok());
                Oracle {
                    scheduler: OnlineScheduler::new(capacity, policy).unwrap(),
                    trajectory: Vec::new(),
                }
            })
            .collect();

        for (i, (tenant, event)) in stream.iter().enumerate() {
            let name = tenant_name(*tenant);
            let oracle = &mut oracles[*tenant];

            // Sprinkle rejected requests in: they must error on both sides and
            // change nothing.
            if rng.random_range(0..20) == 0 {
                let bogus = Request::Depart {
                    tenant: name.clone(),
                    id: u64::MAX,
                };
                assert!(matches!(engine.call(bogus), Response::Error(_)));
                assert!(oracle.scheduler.apply(&Event::departure(u64::MAX)).is_err());
            }

            let response = engine.call(Request::from_event(&name, event));
            let effect = oracle.scheduler.apply(event).unwrap();
            oracle.trajectory.push(effect.cost.ticks());
            let Response::Event {
                machine,
                cost_delta,
                cost,
            } = response
            else {
                panic!("event {i} for {name}: expected an event response, got {response:?}");
            };
            assert_eq!(machine, effect.machine, "event {i} for {name}");
            assert_eq!(cost_delta, effect.cost_delta, "event {i} for {name}");
            assert_eq!(cost, effect.cost.ticks(), "event {i} for {name}");

            // Occasionally interrupt the tenant with a snapshot → restore round
            // trip (the documented semantics restart the trajectory) or check a
            // mid-stream query.
            match rng.random_range(0..25) {
                0 => {
                    let Response::Snapshot(snapshot) = engine.call(Request::Snapshot {
                        tenant: name.clone(),
                    }) else {
                        panic!("expected a snapshot for {name}");
                    };
                    assert!(engine
                        .call(Request::Restore {
                            tenant: name.clone(),
                            snapshot,
                        })
                        .is_ok());
                    oracle.trajectory.clear();
                }
                1 => {
                    assert_reports_equal(
                        &query(&engine, &name),
                        oracle,
                        &format!("mid-stream query after event {i} for {name}"),
                    );
                }
                _ => {}
            }
        }

        for (t, oracle) in oracles.iter().enumerate() {
            let name = tenant_name(t);
            assert_reports_equal(&query(&engine, &name), oracle, &format!("final {name}"));
        }

        let Response::Stats {
            shards: s,
            tenants: live,
            ..
        } = engine.call(Request::Stats)
        else {
            panic!("expected stats");
        };
        assert_eq!(s, shards);
        assert_eq!(live, tenants);

        drop(engine);
        registry.shutdown();
    }
}

#[test]
fn batched_call_many_matches_per_call_replay() {
    // The pipelined connection handler hands decoded windows to `Engine::call_many`,
    // which coalesces each window into one channel send per shard.  Chopping a
    // random multi-tenant stream into random-sized batches — with rejected
    // requests and cross-shard `stats` calls mixed into the windows — must
    // produce response-for-response exactly what per-request `call` produces,
    // in request order, and leave every tenant in its oracle state.
    let model = DurationModel::HeavyTail { min: 1, max: 80 };
    for (seed, shards, tenants) in [(501u64, 1usize, 4usize), (77, 4, 7)] {
        let mut rng = seeded_rng(seed ^ 0xba7c);
        let stream = multi_tenant_stream(&mut seeded_rng(seed), tenants, 80, 2.0, &model);

        let registry = Registry::new(shards);
        let engine = registry.engine();
        let mut oracles: Vec<Oracle> = (0..tenants)
            .map(|t| {
                let capacity = 1 + t % 3;
                assert!(engine
                    .call(Request::Open {
                        tenant: tenant_name(t),
                        capacity,
                        policy: None,
                    })
                    .is_ok());
                Oracle {
                    scheduler: OnlineScheduler::new(capacity, OnlinePolicy::FirstFit).unwrap(),
                    trajectory: Vec::new(),
                }
            })
            .collect();

        let mut requests: Vec<Request> = Vec::new();
        for (tenant, event) in &stream {
            if rng.random_range(0..12) == 0 {
                // A rejected request inside a batch: errors in place, neighbours
                // unaffected.
                requests.push(Request::Depart {
                    tenant: tenant_name(*tenant),
                    id: u64::MAX,
                });
            }
            if rng.random_range(0..25) == 0 {
                // A non-tenant op inside a batch exercises the engine-side inline
                // path next to the shard handoff.
                requests.push(Request::Stats);
            }
            requests.push(Request::from_event(&tenant_name(*tenant), event));
        }

        let mut cursor = 0usize;
        while cursor < requests.len() {
            let take = rng.random_range(1..=64usize).min(requests.len() - cursor);
            let batch: Vec<Request> = requests[cursor..cursor + take].to_vec();
            let responses = engine.call_many(batch.clone());
            assert_eq!(responses.len(), take);
            for (request, response) in batch.iter().zip(responses) {
                match request {
                    Request::Stats => assert!(matches!(response, Response::Stats { .. })),
                    Request::Depart { id: u64::MAX, .. } => {
                        assert!(matches!(response, Response::Error(_)), "{response:?}")
                    }
                    other => {
                        let tenant = other
                            .tenant()
                            .and_then(|name| name.strip_prefix("tenant-"))
                            .and_then(|t| t.parse::<usize>().ok())
                            .unwrap();
                        let oracle = &mut oracles[tenant];
                        let event = match other {
                            Request::Arrive { id, job, .. } => {
                                Event::arrival(*id, busytime::Interval::from_ticks(job.0, job.1))
                            }
                            Request::Depart { id, .. } => Event::departure(*id),
                            _ => unreachable!(),
                        };
                        let effect = oracle.scheduler.apply(&event).unwrap();
                        oracle.trajectory.push(effect.cost.ticks());
                        let Response::Event {
                            machine,
                            cost_delta,
                            cost,
                        } = response
                        else {
                            panic!("expected an event response, got {response:?}");
                        };
                        assert_eq!(machine, effect.machine);
                        assert_eq!(cost_delta, effect.cost_delta);
                        assert_eq!(cost, effect.cost.ticks());
                    }
                }
            }
            cursor += take;
        }

        for (t, oracle) in oracles.iter().enumerate() {
            let name = tenant_name(t);
            assert_reports_equal(&query(&engine, &name), oracle, &format!("final {name}"));
        }
        drop(engine);
        registry.shutdown();
    }
}

#[test]
fn concurrent_sessions_stay_isolated() {
    // One driver thread per tenant, all hammering the same registry concurrently:
    // per-tenant request order is preserved (each tenant has one driver), so every
    // tenant must land in exactly its oracle state no matter how the shards
    // interleave *across* tenants.
    let model = DurationModel::Bimodal {
        short: (1, 5),
        long: (40, 80),
        long_weight: 0.3,
    };
    let tenants = 8usize;
    let stream = multi_tenant_stream(&mut seeded_rng(99), tenants, 120, 1.5, &model);
    let registry = Registry::new(4);

    let reports: Vec<SimulationReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let engine = registry.engine();
                let events: Vec<Event> = stream
                    .iter()
                    .filter(|(tenant, _)| *tenant == t)
                    .map(|&(_, e)| e)
                    .collect();
                scope.spawn(move || {
                    let name = tenant_name(t);
                    assert!(engine
                        .call(Request::Open {
                            tenant: name.clone(),
                            capacity: 2,
                            policy: Some("best-fit".to_string()),
                        })
                        .is_ok());
                    for event in &events {
                        let response = engine.call(Request::from_event(&name, event));
                        assert!(response.is_ok(), "{name}: {response:?}");
                    }
                    query(&engine, &name)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, report) in reports.iter().enumerate() {
        let events: Vec<Event> = stream
            .iter()
            .filter(|(tenant, _)| *tenant == t)
            .map(|&(_, e)| e)
            .collect();
        let mut oracle = Oracle {
            scheduler: OnlineScheduler::new(2, OnlinePolicy::BestFit).unwrap(),
            trajectory: Vec::new(),
        };
        for event in &events {
            let effect = oracle.scheduler.apply(event).unwrap();
            oracle.trajectory.push(effect.cost.ticks());
        }
        assert_reports_equal(report, &oracle, &tenant_name(t));
    }
    registry.shutdown();
}
