//! `PROTOCOL.md` is kept honest here: every fenced JSON block in the document is
//! extracted and round-tripped through the server's actual serde implementations —
//! a request block must parse as a [`Request`] and re-serialize to the same JSON
//! value, a response block as a [`Response`].  The worked session transcript is
//! checked line by line too.  If the wire schema and the document drift apart, this
//! test names the offending block.

use busytime_server::{ErrorCode, Request, Response};
use serde::Value;

const DOC: &str = include_str!("../../../PROTOCOL.md");

/// Parse arbitrary JSON text into the vendored `Value` tree.
fn parse_value(text: &str) -> Value {
    struct Raw(Value);
    impl serde::Deserialize for Raw {
        fn deserialize(value: &Value) -> Result<Self, serde::Error> {
            Ok(Raw(value.clone()))
        }
    }
    serde_json::from_str::<Raw>(text)
        .unwrap_or_else(|e| panic!("documented block is not valid JSON: {e}\n{text}"))
        .0
}

/// Canonicalize a value for comparison: sort object keys recursively, so the
/// document may order fields for readability.
fn canonical(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(canonical).collect()),
        Value::Object(fields) => {
            let mut fields: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, v)| (k.clone(), canonical(v)))
                .collect();
            fields.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(fields)
        }
        other => other.clone(),
    }
}

/// Every fenced block of the given language, in document order.
fn fenced_blocks<'a>(doc: &'a str, language: &str) -> Vec<&'a str> {
    let mut blocks = Vec::new();
    let mut rest = doc;
    let open = format!("```{language}\n");
    while let Some(start) = rest.find(&open) {
        let body = &rest[start + open.len()..];
        let end = body.find("```").expect("every fence closes");
        blocks.push(&body[..end]);
        rest = &body[end + 3..];
    }
    blocks
}

/// Round-trip one documented JSON object through the protocol types; returns the
/// op/shape it was recognized as.
fn check_block(text: &str) -> String {
    let documented = canonical(&parse_value(text));
    let is_request =
        matches!(&documented, Value::Object(fields) if fields.iter().any(|(k, _)| k == "op"));
    if is_request {
        let request = Request::from_json(text)
            .unwrap_or_else(|e| panic!("documented request does not parse: {e}\n{text}"));
        let emitted = canonical(&parse_value(&request.to_json()));
        assert_eq!(
            emitted, documented,
            "re-serializing the documented request changed it:\n{text}"
        );
        format!("request:{}", request.op())
    } else {
        let response = Response::from_json(text)
            .unwrap_or_else(|e| panic!("documented response does not parse: {e}\n{text}"));
        let emitted = canonical(&parse_value(&response.to_json()));
        assert_eq!(
            emitted, documented,
            "re-serializing the documented response changed it:\n{text}"
        );
        "response".to_string()
    }
}

#[test]
fn every_documented_json_example_round_trips() {
    let blocks = fenced_blocks(DOC, "json");
    assert!(
        blocks.len() >= 16,
        "expected a request and a response example per operation, found {}",
        blocks.len()
    );
    let mut seen_requests = Vec::new();
    for block in blocks {
        let shape = check_block(block);
        if let Some(op) = shape.strip_prefix("request:") {
            seen_requests.push(op.to_string());
        }
    }
    // Every operation the server understands has a documented request example.
    for op in [
        "open",
        "arrive",
        "depart",
        "query",
        "snapshot",
        "restore",
        "close",
        "persist",
        "wal_stats",
        "compact",
        "batch",
        "stats",
        "health",
    ] {
        assert!(
            seen_requests.iter().any(|seen| seen == op),
            "operation '{op}' has no documented request example"
        );
    }
}

#[test]
fn every_error_code_is_documented_with_its_byte() {
    // The Errors section documents each wire code string, and the binary
    // framing section pins each code's byte value.
    for code in ErrorCode::ALL {
        let name = code.as_str();
        assert!(
            DOC.contains(&format!("`{name}`")),
            "error code '{name}' is missing from PROTOCOL.md"
        );
        assert!(
            DOC.contains(&format!("`{name}` = {}", code.as_byte())),
            "the binary byte for error code '{name}' ({}) is not documented",
            code.as_byte()
        );
    }
    // Round-trip sanity: the string and byte mappings invert.
    for code in ErrorCode::ALL {
        assert_eq!(ErrorCode::parse(code.as_str()), code);
        assert_eq!(ErrorCode::from_byte(code.as_byte()), code);
    }
}

#[test]
fn the_worked_session_transcript_round_trips() {
    let transcript = fenced_blocks(DOC, "text")
        .into_iter()
        .find(|block| block.contains("→"))
        .expect("the document carries a worked session transcript");
    let mut lines = 0;
    for line in transcript.lines() {
        let line = line.trim();
        if let Some(request) = line.strip_prefix("→ ") {
            check_block(request);
            lines += 1;
        } else if let Some(response) = line.strip_prefix("← ") {
            check_block(response);
            lines += 1;
        }
    }
    assert!(lines >= 10, "the transcript shows a full session: {lines}");
}

#[test]
fn documented_session_replays_against_a_live_engine() {
    // The transcript is not just well-formed — replaying its requests against a
    // fresh registry produces byte-for-byte the documented responses.
    let transcript = fenced_blocks(DOC, "text")
        .into_iter()
        .find(|block| block.contains("→"))
        .unwrap();
    let registry = busytime_server::Registry::new(1);
    let engine = registry.engine();
    let mut expected = Vec::new();
    let mut actual = Vec::new();
    for line in transcript.lines() {
        let line = line.trim();
        if let Some(request) = line.strip_prefix("→ ") {
            actual.push(canonical(&parse_value(
                &engine.call(Request::from_json(request).unwrap()).to_json(),
            )));
        } else if let Some(response) = line.strip_prefix("← ") {
            expected.push(canonical(&parse_value(response)));
        }
    }
    assert_eq!(actual, expected, "the documented session diverged");
    drop(engine);
    registry.shutdown();
}
