//! The chaos grid: seeded fault plans driven over a multi-tenant workload, with
//! every surviving answer checked against a fault-free oracle.  Determinism is
//! the point — [`FaultPlan`] draws its failure points from the seed alone, so a
//! red run reproduces with the seed it prints.
//!
//! Four scenarios:
//!  * WAL faults: injected append/fsync errors must produce explicit errors,
//!    never wrong answers, and a restart must recover exactly the acknowledged
//!    prefix of every damaged tenant.
//!  * Shard kills: a killed worker is respawned in-process and its tenants
//!    recovered from the WAL; retrying the failed calls converges every tenant
//!    to the oracle.
//!  * Connection drops: the self-healing client reconnects, re-binds, resumes
//!    the pipeline exactly once, and still produces the fault-free report.
//!  * Overload: a flooding tenant is shed with `overloaded` while a cotenant on
//!    the same shard keeps getting correct answers, and `health` names the
//!    degraded tenant.
//!
//! `CHAOS_QUICK=1` shrinks the seed grid (the CI smoke configuration).

use std::net::TcpListener;

use busytime::online::{OnlinePolicy, OnlineScheduler, Trace};
use busytime::report::SimulationReport;
use busytime_server::{
    spawn, AdmissionConfig, Client, DurabilityConfig, ErrorCode, FaultKind, FaultPlan, FaultSpec,
    Framing, Registry, RegistryConfig, Request, Response, RetryPolicy,
};
use busytime_workload::{poisson_trace, seeded_rng, DurationModel};

/// The grid of plan seeds, shrunk under `CHAOS_QUICK=1`.
fn seeds() -> Vec<u64> {
    if std::env::var("CHAOS_QUICK").is_ok_and(|v| v != "0") {
        vec![11]
    } else {
        vec![11, 42, 2012]
    }
}

/// One tenant's deterministic workload: its own seeded trace and policy.
fn tenant_trace(seed: u64, tenant: usize, jobs: usize) -> (Trace, OnlinePolicy) {
    let model = DurationModel::HeavyTail { min: 1, max: 60 };
    let trace = poisson_trace(
        &mut seeded_rng(seed ^ (tenant as u64).wrapping_mul(0x9e37)),
        jobs,
        2,
        2.0,
        &model,
    );
    let policy = OnlinePolicy::all()[tenant % OnlinePolicy::all().len()];
    (trace, policy)
}

/// The oracle report for the first `events` events of a tenant's trace.
fn oracle_report(trace: &Trace, policy: OnlinePolicy, events: usize) -> String {
    let mut scheduler = OnlineScheduler::new(trace.capacity, policy).unwrap();
    let mut trajectory = Vec::new();
    for event in &trace.events[..events] {
        trajectory.push(scheduler.apply(event).unwrap().cost.ticks());
    }
    let report = SimulationReport::from_scheduler(&scheduler, trajectory);
    serde_json::to_string(&report).unwrap()
}

/// The server-side report for a tenant, as a comparable JSON string plus the
/// number of events it covers.
fn query_report_counted(engine: &busytime_server::Engine, tenant: &str) -> (String, usize) {
    match engine.call(Request::Query {
        tenant: tenant.to_string(),
    }) {
        Response::Query(report) => (serde_json::to_string(&report).unwrap(), report.events),
        other => panic!("query for '{tenant}': {other:?}"),
    }
}

/// The server-side report for a tenant, as a comparable JSON string.
fn query_report(engine: &busytime_server::Engine, tenant: &str) -> String {
    query_report_counted(engine, tenant).0
}

#[test]
fn wal_faults_fail_loudly_and_recovery_keeps_the_acked_prefix() {
    let tenants = 4usize;
    let jobs = 60usize;
    for seed in seeds() {
        let root =
            std::env::temp_dir().join(format!("busytime-chaos-wal-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let workloads: Vec<(Trace, OnlinePolicy)> =
            (0..tenants).map(|t| tenant_trace(seed, t, jobs)).collect();

        let mut config = RegistryConfig::new(2);
        let mut durability = DurabilityConfig::new(&root);
        // Fsync on every append so WalSync points fire deterministically with
        // the append stream instead of waiting on a batch boundary.
        durability.fsync_batch = 1;
        config.durability = Some(durability);
        let total_events: usize = workloads.iter().map(|(t, _)| t.events.len()).sum();
        config.faults = Some(FaultPlan::new(FaultSpec {
            wal_appends: 2,
            wal_syncs: 2,
            horizon: (total_events / 2) as u64,
            ..FaultSpec::quiet(seed)
        }));
        let registry = Registry::with_config(config).unwrap();
        let engine = registry.engine();

        // Interleave the tenants round-robin; record how much of each tenant's
        // trace was acknowledged before (if ever) its WAL failed.
        let mut acked = vec![0usize; tenants];
        let mut failed = vec![false; tenants];
        for (t, (trace, policy)) in workloads.iter().enumerate() {
            let name = format!("wal-{seed}-{t}");
            let response = engine.call(Request::Open {
                tenant: name,
                capacity: trace.capacity,
                policy: Some(policy.name().to_string()),
            });
            assert!(response.is_ok(), "seed {seed}: open {t}: {response:?}");
        }
        let longest = workloads.iter().map(|(t, _)| t.events.len()).max().unwrap();
        for i in 0..longest {
            for (t, (trace, _)) in workloads.iter().enumerate() {
                let Some(event) = trace.events.get(i) else {
                    continue;
                };
                if failed[t] {
                    // A tenant dropped after a journal fault answers
                    // `unknown_tenant` from then on — never a wrong answer.
                    let response =
                        engine.call(Request::from_event(&format!("wal-{seed}-{t}"), event));
                    let Response::Error(error) = response else {
                        panic!("seed {seed}: tenant {t} answered after its WAL died");
                    };
                    assert_eq!(
                        error.code,
                        ErrorCode::UnknownTenant,
                        "seed {seed}: {error:?}"
                    );
                    continue;
                }
                match engine.call(Request::from_event(&format!("wal-{seed}-{t}"), event)) {
                    Response::Error(error) => {
                        assert_eq!(
                            error.code,
                            ErrorCode::Internal,
                            "seed {seed}: tenant {t} event {i}: {error:?}"
                        );
                        assert!(
                            error.message.contains("journal"),
                            "seed {seed}: {}",
                            error.message
                        );
                        failed[t] = true;
                    }
                    response => {
                        assert!(response.is_ok(), "seed {seed}: {response:?}");
                        acked[t] += 1;
                    }
                }
            }
        }
        let plan = engine.fault_plan().unwrap().clone();
        let fired = plan.fired(FaultKind::WalAppend) + plan.fired(FaultKind::WalSync);
        assert!(fired > 0, "seed {seed}: no WAL fault fired — grid is inert");
        assert_eq!(
            failed.iter().filter(|&&f| f).count() as u64,
            fired,
            "seed {seed}: every fired WAL fault drops exactly one tenant"
        );

        // Untouched tenants match the full oracle in place.
        for (t, (trace, policy)) in workloads.iter().enumerate() {
            if !failed[t] {
                assert_eq!(acked[t], trace.events.len(), "seed {seed}: tenant {t}");
                assert_eq!(
                    query_report(&engine, &format!("wal-{seed}-{t}")),
                    oracle_report(trace, *policy, trace.events.len()),
                    "seed {seed}: untouched tenant {t} diverged"
                );
            }
        }
        drop(engine);
        registry.shutdown();

        // Restart without faults: every tenant — damaged or not — recovers a
        // prefix that covers everything acknowledged.  A tenant felled by an
        // fsync fault may recover one extra event: the record hit the file
        // before the sync failed, which is the standard WAL promise (an
        // unacknowledged write may or may not survive; acknowledged ones must).
        let registry = Registry::with_durability(2, Some(DurabilityConfig::new(&root))).unwrap();
        let engine = registry.engine();
        for (t, (trace, policy)) in workloads.iter().enumerate() {
            let (report, recovered) = query_report_counted(&engine, &format!("wal-{seed}-{t}"));
            assert!(
                recovered == acked[t] || (failed[t] && recovered == acked[t] + 1),
                "seed {seed}: tenant {t} recovered {recovered} events, acked {}",
                acked[t]
            );
            assert_eq!(
                report,
                oracle_report(trace, *policy, recovered),
                "seed {seed}: tenant {t} recovered prefix diverged"
            );
        }
        drop(engine);
        registry.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn killed_shards_respawn_and_converge_to_the_oracle() {
    let tenants = 4usize;
    let jobs = 50usize;
    for seed in seeds() {
        let root =
            std::env::temp_dir().join(format!("busytime-chaos-kill-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let workloads: Vec<(Trace, OnlinePolicy)> =
            (0..tenants).map(|t| tenant_trace(seed, t, jobs)).collect();
        let total_events: usize = workloads.iter().map(|(t, _)| t.events.len()).sum();

        let mut config = RegistryConfig::new(2);
        config.durability = Some(DurabilityConfig::new(&root));
        config.faults = Some(FaultPlan::new(FaultSpec {
            shard_kills: 2,
            horizon: (total_events / 2) as u64,
            ..FaultSpec::quiet(seed)
        }));
        let registry = Registry::with_config(config).unwrap();
        let engine = registry.engine();

        for (t, (trace, policy)) in workloads.iter().enumerate() {
            let name = format!("kill-{seed}-{t}");
            let response = engine.call(Request::Open {
                tenant: name,
                capacity: trace.capacity,
                policy: Some(policy.name().to_string()),
            });
            assert!(response.is_ok(), "seed {seed}: open {t}: {response:?}");
        }
        // A kill fires before the worker touches its batch, so a retryable
        // error means the event was neither applied nor logged: retry until
        // the respawned worker (WAL replayed) answers.
        let mut retried = 0u64;
        let longest = workloads.iter().map(|(t, _)| t.events.len()).max().unwrap();
        for i in 0..longest {
            for (t, (trace, _)) in workloads.iter().enumerate() {
                let Some(event) = trace.events.get(i) else {
                    continue;
                };
                let request = Request::from_event(&format!("kill-{seed}-{t}"), event);
                let mut attempts = 0;
                loop {
                    match engine.call(request.clone()) {
                        Response::Error(error) if error.code.is_retryable() => {
                            retried += 1;
                            attempts += 1;
                            assert!(attempts < 100, "seed {seed}: shard never came back");
                        }
                        response => {
                            assert!(response.is_ok(), "seed {seed}: {response:?}");
                            break;
                        }
                    }
                }
            }
        }
        let plan = engine.fault_plan().unwrap().clone();
        assert_eq!(
            plan.fired(FaultKind::ShardKill),
            2,
            "seed {seed}: both planned kills fire inside the horizon"
        );
        assert!(retried > 0, "seed {seed}: kills fired but nothing retried");

        // Every tenant — including those on the killed shard — converges to
        // the fault-free oracle.
        for (t, (trace, policy)) in workloads.iter().enumerate() {
            assert_eq!(
                query_report(&engine, &format!("kill-{seed}-{t}")),
                oracle_report(trace, *policy, trace.events.len()),
                "seed {seed}: tenant {t} diverged after respawn"
            );
        }
        // The respawns are visible in the health report.
        let Response::Health(health) = engine.call(Request::Health) else {
            panic!("seed {seed}: health failed");
        };
        let respawns: u64 = health.shards.iter().map(|s| s.respawns).sum();
        assert!(respawns >= 1, "seed {seed}: {health:?}");
        drop(engine);
        registry.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn dropped_connections_heal_into_the_fault_free_report() {
    let jobs = 80usize;
    for seed in seeds() {
        for framing in [Framing::Ndjson, Framing::Binary] {
            let (trace, policy) = tenant_trace(seed, 0, jobs);

            // The fault-free reference, driven locally.
            let expected = oracle_report(&trace, policy, trace.events.len());

            let mut config = RegistryConfig::new(2);
            config.faults = Some(FaultPlan::new(FaultSpec {
                conn_drops: 3,
                slow_writes: 2,
                // Flush occurrences are plentiful under pipelining; keep the
                // horizon low enough that every planned drop fires.
                horizon: (jobs / 2) as u64,
                ..FaultSpec::quiet(seed)
            }));
            let registry = Registry::with_config(config).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let server = spawn(listener, registry.engine()).unwrap();

            let policy_retry = RetryPolicy {
                base_delay_ms: 1,
                max_delay_ms: 20,
                ..RetryPolicy::default()
            };
            let mut client =
                Client::connect_resilient(server.addr(), framing, policy_retry).unwrap();
            let report = client
                .drive_trace_pipelined(&format!("conn-{seed}"), &trace, policy, 8)
                .unwrap_or_else(|e| {
                    panic!("seed {seed} {}: healing drive failed: {e}", framing.name())
                });
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                expected,
                "seed {seed} {}: healed run diverged from the oracle",
                framing.name()
            );
            let engine = registry.engine();
            let plan = engine.fault_plan().unwrap();
            assert!(
                plan.fired(FaultKind::ConnDrop) > 0,
                "seed {seed} {}: no connection ever dropped — grid is inert",
                framing.name()
            );
            drop(client);
            drop(server);
            drop(engine);
            registry.shutdown();
        }
    }
}

#[test]
fn a_flooding_tenant_is_shed_while_its_cotenant_keeps_working() {
    let mut config = RegistryConfig::new(2);
    config.admission = Some(AdmissionConfig {
        tenant_rate: Some(50.0),
        ..AdmissionConfig::default()
    });
    let registry = Registry::with_config(config).unwrap();
    let engine = registry.engine();

    // Two tenants pinned to the same shard, so the flood and the victim share
    // every server-side resource.
    let flood = "flood".to_string();
    let victim = (0..)
        .map(|i| format!("victim-{i}"))
        .find(|name| engine.shard_for(name) == engine.shard_for(&flood))
        .unwrap();
    for name in [&flood, &victim] {
        let response = engine.call(Request::Open {
            tenant: name.clone(),
            capacity: 2,
            policy: Some("first-fit".to_string()),
        });
        assert!(response.is_ok(), "{response:?}");
    }

    // Flood one tenant far past its quota: the overflow must shed with a
    // retry hint, not block or fail some other way.
    let mut shed = 0usize;
    for _ in 0..500 {
        match engine.call(Request::Query {
            tenant: flood.clone(),
        }) {
            Response::Error(error) => {
                assert_eq!(error.code, ErrorCode::Overloaded, "{error:?}");
                assert!(error.retry_after_ms.is_some(), "{error:?}");
                shed += 1;
            }
            response => assert!(response.is_ok(), "{response:?}"),
        }
    }
    assert!(shed > 0, "the quota never shed a 500-request flood");

    // The cotenant's work is untouched: every event lands and matches the
    // lone-scheduler oracle.  Its workload stays under its own burst budget —
    // the quota is per tenant, so only the flooder pays for the flood.
    let (trace, policy) = tenant_trace(7, 0, 12);
    let response = engine.call(Request::Close {
        tenant: victim.clone(),
    });
    assert!(response.is_ok(), "{response:?}");
    let response = engine.call(Request::Open {
        tenant: victim.clone(),
        capacity: trace.capacity,
        policy: Some(policy.name().to_string()),
    });
    assert!(response.is_ok(), "{response:?}");
    for event in &trace.events {
        let response = engine.call(Request::from_event(&victim, event));
        assert!(
            response.is_ok(),
            "cotenant shed alongside the flood: {response:?}"
        );
    }
    assert_eq!(
        query_report(&engine, &victim),
        oracle_report(&trace, policy, trace.events.len()),
        "the cotenant's answers drifted under the flood"
    );

    // `health` names the degraded tenant and counts its sheds.
    let Response::Health(health) = engine.call(Request::Health) else {
        panic!("health failed");
    };
    let degraded = health
        .degraded
        .iter()
        .find(|t| t.tenant == flood)
        .unwrap_or_else(|| panic!("the flooded tenant is missing from {health:?}"));
    assert_eq!(degraded.shed, shed as u64);
    assert!(
        !health.degraded.iter().any(|t| t.tenant == victim),
        "the cotenant must not appear degraded: {health:?}"
    );
    drop(engine);
    registry.shutdown();
}
