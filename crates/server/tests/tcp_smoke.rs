//! End-to-end smoke over a real loopback socket: bind an ephemeral port, run the
//! daemon's accept loop, and drive it with the blocking [`Client`] — including two
//! concurrent connections, a snapshot/restore round trip over the wire, and a
//! malformed line that must not take the connection down.

use std::net::TcpListener;

use busytime::online::{Event, Trace};
use busytime::{Interval, OnlinePolicy};
use busytime_server::{serve, Client, Registry, Request, Response};

/// Bind an ephemeral loopback port and serve a fresh registry on a background
/// thread; returns the address to connect to.
fn spawn_server(shards: usize) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let registry = Registry::new(shards);
    let engine = registry.engine();
    std::thread::spawn(move || {
        // The registry must outlive the accept loop; the test process exits with
        // both still running, like the real daemon.
        let _registry = registry;
        let _ = serve(listener, engine);
    });
    addr
}

fn sample_trace() -> Trace {
    Trace::new(
        2,
        vec![
            Event::arrival(1, Interval::from_ticks(0, 10)),
            Event::arrival(2, Interval::from_ticks(4, 12)),
            Event::arrival(3, Interval::from_ticks(6, 14)),
            Event::departure(1),
        ],
    )
}

#[test]
fn drive_trace_over_the_wire_matches_local_simulation() {
    let addr = spawn_server(2);
    let mut client = Client::connect(&addr).unwrap();
    let report = client
        .drive_trace("acme", &sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();

    // The local replay of the same trace (the `simulate` path).
    let run = busytime::Solver::new()
        .solve_online(&sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();
    let trajectory: Vec<i64> = run.trajectory.iter().map(|d| d.ticks()).collect();
    let local = busytime::report::SimulationReport::from_scheduler(&run.scheduler, trajectory);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&local).unwrap(),
        "the wire-driven tenant must equal the local simulation"
    );
}

#[test]
fn driving_the_same_tenant_twice_replays_fresh() {
    // A rerun of `busytime client` with the same tenant name must not fail on the
    // leftover tenant — the drive closes and reopens it, replaying from empty.
    let addr = spawn_server(2);
    let mut client = Client::connect(&addr).unwrap();
    let first = client
        .drive_trace("repeat", &sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();
    let second = client
        .drive_trace("repeat", &sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap()
    );
}

#[test]
fn snapshot_restore_and_stats_over_the_wire() {
    let addr = spawn_server(3);
    let mut client = Client::connect(&addr).unwrap();
    client
        .drive_trace("src", &sample_trace(), OnlinePolicy::BestFit)
        .unwrap();

    let Response::Snapshot(snapshot) = client
        .call_ok(&Request::Snapshot {
            tenant: "src".into(),
        })
        .unwrap()
    else {
        panic!("expected a snapshot");
    };
    client
        .call_ok(&Request::Restore {
            tenant: "dst".into(),
            snapshot,
        })
        .unwrap();

    // Both tenants evolve identically from here (a second connection drives `dst`).
    let mut second = Client::connect(&addr).unwrap();
    let grow = |client: &mut Client, tenant: &str| {
        client
            .call_ok(&Request::Arrive {
                tenant: tenant.into(),
                id: 50,
                job: (9, 21),
            })
            .unwrap()
    };
    let a = grow(&mut client, "src");
    let b = grow(&mut second, "dst");
    assert_eq!(a.to_json(), b.to_json());

    let Response::Stats {
        shards,
        tenants,
        requests,
    } = client.call_ok(&Request::Stats).unwrap()
    else {
        panic!("expected stats");
    };
    assert_eq!(shards, 3);
    assert_eq!(tenants, 2);
    assert!(requests >= 8);
}

#[test]
fn malformed_lines_do_not_kill_the_connection() {
    use std::io::{BufRead, BufReader, Write};

    let addr = spawn_server(1);
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    stream.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Response::from_json(line.trim_end()).unwrap();
    assert!(!response.is_ok(), "{line}");

    // Blank lines are skipped; the connection is still healthy for real requests.
    stream.write_all(b"\n{\"op\":\"stats\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::from_json(line.trim_end()).unwrap(),
        Response::Stats { shards: 1, .. }
    ));

    // An unknown op reports the valid ones.
    stream.write_all(b"{\"op\":\"fly\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let Response::Error(error) = Response::from_json(line.trim_end()).unwrap() else {
        panic!("expected an error");
    };
    assert!(error.contains("unknown op"), "{error}");
}
