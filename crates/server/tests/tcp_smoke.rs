//! End-to-end smoke over a real loopback socket: bind an ephemeral port, run the
//! daemon's accept loop, and drive it with the blocking [`Client`] — including two
//! concurrent connections, a snapshot/restore round trip over the wire, and a
//! malformed line that must not take the connection down.

use std::net::TcpListener;

use busytime::online::{Event, Trace};
use busytime::{Interval, OnlinePolicy};
use busytime_server::{serve, Client, Registry, Request, Response};

/// Bind an ephemeral loopback port and serve a fresh registry on a background
/// thread; returns the address to connect to.
fn spawn_server(shards: usize) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let registry = Registry::new(shards);
    let engine = registry.engine();
    std::thread::spawn(move || {
        // The registry must outlive the accept loop; the test process exits with
        // both still running, like the real daemon.
        let _registry = registry;
        let _ = serve(listener, engine);
    });
    addr
}

fn sample_trace() -> Trace {
    Trace::new(
        2,
        vec![
            Event::arrival(1, Interval::from_ticks(0, 10)),
            Event::arrival(2, Interval::from_ticks(4, 12)),
            Event::arrival(3, Interval::from_ticks(6, 14)),
            Event::departure(1),
        ],
    )
}

#[test]
fn drive_trace_over_the_wire_matches_local_simulation() {
    let addr = spawn_server(2);
    let mut client = Client::connect(&addr).unwrap();
    let report = client
        .drive_trace("acme", &sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();

    // The local replay of the same trace (the `simulate` path).
    let run = busytime::Solver::new()
        .solve_online(&sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();
    let trajectory: Vec<i64> = run.trajectory.iter().map(|d| d.ticks()).collect();
    let local = busytime::report::SimulationReport::from_scheduler(&run.scheduler, trajectory);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&local).unwrap(),
        "the wire-driven tenant must equal the local simulation"
    );
}

#[test]
fn driving_the_same_tenant_twice_replays_fresh() {
    // A rerun of `busytime client` with the same tenant name must not fail on the
    // leftover tenant — the drive closes and reopens it, replaying from empty.
    let addr = spawn_server(2);
    let mut client = Client::connect(&addr).unwrap();
    let first = client
        .drive_trace("repeat", &sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();
    let second = client
        .drive_trace("repeat", &sample_trace(), OnlinePolicy::FirstFit)
        .unwrap();
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap()
    );
}

#[test]
fn snapshot_restore_and_stats_over_the_wire() {
    let addr = spawn_server(3);
    let mut client = Client::connect(&addr).unwrap();
    client
        .drive_trace("src", &sample_trace(), OnlinePolicy::BestFit)
        .unwrap();

    let Response::Snapshot(snapshot) = client
        .call_ok(&Request::Snapshot {
            tenant: "src".into(),
        })
        .unwrap()
    else {
        panic!("expected a snapshot");
    };
    client
        .call_ok(&Request::Restore {
            tenant: "dst".into(),
            snapshot,
        })
        .unwrap();

    // Both tenants evolve identically from here (a second connection drives `dst`).
    let mut second = Client::connect(&addr).unwrap();
    let grow = |client: &mut Client, tenant: &str| {
        client
            .call_ok(&Request::Arrive {
                tenant: tenant.into(),
                id: 50,
                job: (9, 21),
            })
            .unwrap()
    };
    let a = grow(&mut client, "src");
    let b = grow(&mut second, "dst");
    assert_eq!(a.to_json(), b.to_json());

    let Response::Stats {
        shards,
        tenants,
        requests,
    } = client.call_ok(&Request::Stats).unwrap()
    else {
        panic!("expected stats");
    };
    assert_eq!(shards, 3);
    assert_eq!(tenants, 2);
    assert!(requests >= 8);
}

#[test]
fn one_connection_may_mix_framings_per_message() {
    use busytime_server::{FrameRequest, FrameResponse, RequestFrame, ResponseFrame};
    use std::io::{BufRead, BufReader, Write};

    let addr = spawn_server(2);
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // NDJSON open…
    stream
        .write_all(b"{\"op\":\"open\",\"tenant\":\"mix\",\"capacity\":1}\n")
        .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(Response::from_json(line.trim_end()).unwrap().is_ok());

    // …then a binary bind + arrive on the same connection…
    for frame in [
        RequestFrame {
            seq: 1,
            body: FrameRequest::Bind { name: "mix".into() },
        },
        RequestFrame {
            seq: 2,
            body: FrameRequest::Arrive {
                tenant: 0,
                id: 1,
                start: 0,
                end: 5,
            },
        },
    ] {
        stream.write_all(&frame.encode()).unwrap();
    }
    let bound = ResponseFrame::read(&mut reader).unwrap();
    assert!(
        matches!(bound.body, FrameResponse::Bound { tenant: 0 }),
        "{bound:?}"
    );
    let event = ResponseFrame::read(&mut reader).unwrap();
    assert!(
        matches!(
            event.body,
            FrameResponse::Event {
                machine: 0,
                cost_delta: 5,
                cost: 5
            }
        ),
        "{event:?}"
    );

    // …and back to NDJSON, seeing the state the binary frames built.
    stream
        .write_all(b"{\"op\":\"depart\",\"tenant\":\"mix\",\"id\":1}\n")
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        matches!(
            Response::from_json(line.trim_end()).unwrap(),
            Response::Event { cost_delta: -5, .. }
        ),
        "{line}"
    );
}

#[test]
fn hostile_binary_frames_drop_the_connection_without_desyncing_others() {
    use busytime_server::{FrameResponse, ResponseFrame};
    use std::io::{Read, Write};

    let addr = spawn_server(1);

    // A long-lived honest connection that must survive everything below.
    let mut honest = Client::connect_binary(&addr).unwrap();
    honest
        .call_ok(&Request::Open {
            tenant: "honest".into(),
            capacity: 1,
            policy: None,
        })
        .unwrap();

    // Hostile connection 1: an unknown opcode after the magic byte.  The server
    // answers a final error frame echoing the sequence number, then closes.
    let mut bad = std::net::TcpStream::connect(&addr).unwrap();
    bad.write_all(&[0xB5, 0x7f, 9, 0, 0, 0]).unwrap();
    let frame = ResponseFrame::read(&mut bad).unwrap();
    assert_eq!(frame.seq, 9);
    assert!(
        matches!(frame.body, FrameResponse::Error { .. }),
        "{frame:?}"
    );
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "the connection must close after the error frame"
    );

    // Hostile connection 2: a bind declaring a 3 GiB name.  Refused before the
    // allocation; the connection closes after the error frame.
    let mut bad = std::net::TcpStream::connect(&addr).unwrap();
    let mut bytes = vec![0xB5, 0x04, 1, 0, 0, 0];
    bytes.extend_from_slice(&3_000_000_000u32.to_le_bytes());
    bad.write_all(&bytes).unwrap();
    let frame = ResponseFrame::read(&mut bad).unwrap();
    assert!(
        matches!(frame.body, FrameResponse::Error { .. }),
        "{frame:?}"
    );
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // Hostile connection 3: a frame truncated mid-body, then a clean shutdown.
    // Nothing to answer (the header's promise was never kept) — the server just
    // drops the connection without panicking.
    let mut bad = std::net::TcpStream::connect(&addr).unwrap();
    bad.write_all(&[0xB5, 0x01, 0, 0, 0, 0, 1, 2, 3]).unwrap();
    bad.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();

    // Hostile connection 4: an unbound tenant id is a *semantic* error — the
    // frame decodes fine, so the connection stays usable.
    let mut semi = std::net::TcpStream::connect(&addr).unwrap();
    semi.write_all(
        &busytime_server::RequestFrame {
            seq: 4,
            body: busytime_server::FrameRequest::Query { tenant: 42 },
        }
        .encode(),
    )
    .unwrap();
    let frame = ResponseFrame::read(&mut semi).unwrap();
    assert!(
        matches!(frame.body, FrameResponse::Error { .. }),
        "{frame:?}"
    );
    semi.write_all(
        &busytime_server::RequestFrame {
            seq: 5,
            body: busytime_server::FrameRequest::Bind {
                name: "late".into(),
            },
        }
        .encode(),
    )
    .unwrap();
    let frame = ResponseFrame::read(&mut semi).unwrap();
    assert!(
        matches!(frame.body, FrameResponse::Bound { tenant: 0 }),
        "the connection must stay usable after a semantic error: {frame:?}"
    );

    // Through it all, the honest connection never desynced.
    let response = honest
        .call_ok(&Request::Arrive {
            tenant: "honest".into(),
            id: 1,
            job: (0, 7),
        })
        .unwrap();
    assert!(
        matches!(response, Response::Event { cost: 7, .. }),
        "{response:?}"
    );
}

#[test]
fn malformed_lines_do_not_kill_the_connection() {
    use std::io::{BufRead, BufReader, Write};

    let addr = spawn_server(1);
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    stream.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Response::from_json(line.trim_end()).unwrap();
    assert!(!response.is_ok(), "{line}");

    // Blank lines are skipped; the connection is still healthy for real requests.
    stream.write_all(b"\n{\"op\":\"stats\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::from_json(line.trim_end()).unwrap(),
        Response::Stats { shards: 1, .. }
    ));

    // An unknown op reports the valid ones.
    stream.write_all(b"{\"op\":\"fly\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let Response::Error(error) = Response::from_json(line.trim_end()).unwrap() else {
        panic!("expected an error");
    };
    assert!(error.message.contains("unknown op"), "{error}");
}
