//! `PROTOCOL.md`'s "Binary framing" section is kept honest the same way the JSON
//! sections are: its byte-level worked example is parsed out of the document,
//! decoded and re-encoded by the real codec (byte identity), and then replayed
//! against a live daemon over a loopback socket — every documented response frame
//! must come back byte-for-byte.  A proptest pins the other satellite promise:
//! binary round-trip ≡ JSON round-trip for **every** operation, and the decoder
//! survives arbitrary hostile bytes without panicking.

use std::io::{Cursor, Write};
use std::net::{TcpListener, TcpStream};

use busytime::online::{Event, OnlineScheduler};
use busytime::{Interval, OnlinePolicy};
use busytime_server::frame::{DecodeError, MAX_NAME, MAX_PAYLOAD};
use busytime_server::{
    serve, BatchInstance, FrameRequest, Registry, Request, RequestFrame, ResponseFrame,
};
use proptest::prelude::*;

const DOC: &str = include_str!("../../../PROTOCOL.md");

/// Bind an ephemeral loopback port and serve a fresh registry on a background
/// thread; returns the address to connect to.
fn spawn_server(shards: usize) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let registry = Registry::new(shards);
    let engine = registry.engine();
    std::thread::spawn(move || {
        let _registry = registry;
        let _ = serve(listener, engine);
    });
    addr
}

/// One direction-tagged frame from the documented hex session.
#[derive(Debug, PartialEq)]
struct HexFrame {
    client_to_server: bool,
    bytes: Vec<u8>,
}

/// Extract the documented hex session: the first ```text fence whose frames are
/// written as `>`/`<` lines of hex bytes (continuation lines are indented; `#`
/// lines are commentary).
fn documented_hex_session() -> Vec<HexFrame> {
    let mut rest = DOC;
    while let Some(start) = rest.find("```text\n") {
        let body = &rest[start + "```text\n".len()..];
        let end = body.find("```").expect("every fence closes");
        let block = &body[..end];
        rest = &body[end + 3..];
        if !block.lines().any(|line| line.starts_with("> b5")) {
            continue;
        }
        let mut frames: Vec<HexFrame> = Vec::new();
        for line in block.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (target, hex) = if let Some(hex) = line.strip_prefix("> ") {
                frames.push(HexFrame {
                    client_to_server: true,
                    bytes: Vec::new(),
                });
                (frames.last_mut().unwrap(), hex)
            } else if let Some(hex) = line.strip_prefix("< ") {
                frames.push(HexFrame {
                    client_to_server: false,
                    bytes: Vec::new(),
                });
                (frames.last_mut().unwrap(), hex)
            } else {
                (
                    frames.last_mut().expect("continuation before any frame"),
                    trimmed,
                )
            };
            for byte in hex.split_whitespace() {
                target
                    .bytes
                    .push(u8::from_str_radix(byte, 16).unwrap_or_else(|_| {
                        panic!("'{byte}' in the documented session is not a hex byte")
                    }));
            }
        }
        return frames;
    }
    panic!("PROTOCOL.md has no binary worked-example fence (`> b5 …` lines)");
}

/// Render one frame the way the document writes it: direction marker, sixteen
/// hex bytes per line, continuations indented.
fn render_hex(client_to_server: bool, bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(if i == 0 {
            if client_to_server {
                "> "
            } else {
                "< "
            }
        } else {
            "  "
        });
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        out.push_str(&hex.join(" "));
        out.push('\n');
    }
    out
}

/// The canonical worked-example requests, in order (the document must show
/// exactly these).
fn worked_example_requests() -> Vec<RequestFrame> {
    vec![
        RequestFrame {
            seq: 0,
            body: FrameRequest::Bind {
                name: "acme".into(),
            },
        },
        RequestFrame {
            seq: 1,
            body: FrameRequest::Json {
                payload: Request::Open {
                    tenant: "acme".into(),
                    capacity: 1,
                    policy: None,
                }
                .to_json(),
            },
        },
        RequestFrame {
            seq: 2,
            body: FrameRequest::Arrive {
                tenant: 0,
                id: 1,
                start: 0,
                end: 10,
            },
        },
        RequestFrame {
            seq: 3,
            body: FrameRequest::Arrive {
                tenant: 0,
                id: 2,
                start: 2,
                end: 5,
            },
        },
        RequestFrame {
            seq: 4,
            body: FrameRequest::Depart { tenant: 0, id: 1 },
        },
    ]
}

/// Replay the worked-example requests against a live daemon in lockstep and
/// return the whole session as wire frames.
fn live_session() -> Vec<HexFrame> {
    let addr = spawn_server(1);
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut session = Vec::new();
    for request in worked_example_requests() {
        let bytes = request.encode();
        stream.write_all(&bytes).unwrap();
        session.push(HexFrame {
            client_to_server: true,
            bytes,
        });
        let response = ResponseFrame::read(&mut stream).expect("the daemon answers every frame");
        assert_eq!(response.seq, request.seq, "responses echo the sequence");
        session.push(HexFrame {
            client_to_server: false,
            bytes: response.encode(),
        });
    }
    session
}

#[test]
fn the_documented_binary_session_is_byte_exact_against_a_live_daemon() {
    let live = live_session();
    let documented = documented_hex_session();
    if live != documented {
        let rendered: String = live
            .iter()
            .map(|frame| render_hex(frame.client_to_server, &frame.bytes))
            .collect();
        panic!(
            "PROTOCOL.md's binary worked example diverged from the live daemon.\n\
             The correct session is:\n{rendered}"
        );
    }
}

#[test]
fn every_documented_binary_frame_re_encodes_to_the_same_bytes() {
    for frame in documented_hex_session() {
        let mut cursor = Cursor::new(frame.bytes.as_slice());
        let re_encoded = if frame.client_to_server {
            RequestFrame::read(&mut cursor)
                .unwrap_or_else(|e| panic!("documented request frame does not decode: {e}"))
                .encode()
        } else {
            ResponseFrame::read(&mut cursor)
                .unwrap_or_else(|e| panic!("documented response frame does not decode: {e}"))
                .encode()
        };
        assert_eq!(
            re_encoded, frame.bytes,
            "re-encoding a documented frame changed its bytes"
        );
        assert_eq!(
            cursor.position() as usize,
            frame.bytes.len(),
            "a documented frame has trailing bytes the decoder did not consume"
        );
    }
}

/// A snapshot with some real structure in it, for the restore arm of the
/// every-op proptest.
fn sample_snapshot(jobs: usize) -> busytime::online::OnlineSnapshot {
    let mut scheduler = OnlineScheduler::new(2, OnlinePolicy::FirstFit).unwrap();
    for id in 0..jobs as u64 {
        let start = 3 * id as i64;
        scheduler
            .apply(&Event::arrival(
                id + 1,
                Interval::from_ticks(start, start + 7),
            ))
            .unwrap();
    }
    scheduler.snapshot()
}

/// Encode a protocol request the way the binary client does — fast-path frames
/// for `arrive`/`depart`/`query` against a binding table, a JSON-payload frame
/// for everything else — then decode it and map it back to a protocol request.
fn through_binary(request: &Request, seq: u32, bindings: &[&str]) -> Request {
    let id_of = |tenant: &str| {
        bindings
            .iter()
            .position(|name| *name == tenant)
            .expect("the test binds every tenant it uses") as u32
    };
    let body = match request {
        Request::Arrive { tenant, id, job } => FrameRequest::Arrive {
            tenant: id_of(tenant),
            id: *id,
            start: job.0,
            end: job.1,
        },
        Request::Depart { tenant, id } => FrameRequest::Depart {
            tenant: id_of(tenant),
            id: *id,
        },
        Request::Query { tenant } => FrameRequest::Query {
            tenant: id_of(tenant),
        },
        other => FrameRequest::Json {
            payload: other.to_json(),
        },
    };
    let bytes = RequestFrame { seq, body }.encode();
    let decoded = RequestFrame::read(&mut Cursor::new(&bytes)).expect("own encoding decodes");
    assert_eq!(decoded.seq, seq);
    assert_eq!(decoded.encode(), bytes, "re-encoding changed the bytes");
    match decoded.body {
        FrameRequest::Arrive {
            tenant,
            id,
            start,
            end,
        } => Request::Arrive {
            tenant: bindings[tenant as usize].to_string(),
            id,
            job: (start, end),
        },
        FrameRequest::Depart { tenant, id } => Request::Depart {
            tenant: bindings[tenant as usize].to_string(),
            id,
        },
        FrameRequest::Query { tenant } => Request::Query {
            tenant: bindings[tenant as usize].to_string(),
        },
        FrameRequest::Json { payload } => {
            Request::from_json(&payload).expect("the JSON payload is a wire request")
        }
        FrameRequest::Bind { .. } => unreachable!("the mapping never emits a bind"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// For every operation the server understands, sending it through the binary
    /// framing is indistinguishable from sending it through NDJSON: the frame
    /// round-trips to the same request the JSON round-trip yields.
    #[test]
    fn binary_round_trip_equals_json_round_trip_for_every_op(
        op in 0usize..11,
        tenant_ix in 0usize..3,
        seq in 0u32..=u32::MAX,
        // The NDJSON side carries ids in a JSON integer (`i64`), so the shared
        // id space is the i64-representable half; the binary side would carry
        // all 64 bits, but the equivalence is only claimed for wire-legal ids.
        id in 0u64..=i64::MAX as u64,
        start in -1_000_000i64..1_000_000,
        len in 0i64..1_000_000,
        capacity in 1usize..64,
        policy_ix in 0usize..3,
        jobs in prop::collection::vec((-1000i64..1000, 1i64..500), 0..4),
        budget in (any::<bool>(), 0i64..10_000)
            .prop_map(|(none, t)| if none { None } else { Some(t) }),
    ) {
        let bindings = ["acme", "zeta corp", "ünïcode"];
        let tenant = bindings[tenant_ix].to_string();
        let policy = [None, Some("first-fit".to_string()), Some("best-fit".to_string())]
            [policy_ix].clone();
        let request = match op {
            0 => Request::Open { tenant, capacity, policy },
            1 => Request::Arrive { tenant, id, job: (start, start + len) },
            2 => Request::Depart { tenant, id },
            3 => Request::Query { tenant },
            4 => Request::Snapshot { tenant },
            5 => Request::Restore { tenant, snapshot: sample_snapshot(jobs.len()) },
            6 => Request::Close { tenant },
            7 => Request::Persist { tenant },
            8 => Request::WalStats { tenant },
            9 => Request::Batch {
                instances: jobs
                    .iter()
                    .map(|&(s, l)| BatchInstance { capacity, jobs: vec![(s, s + l)] })
                    .collect(),
                budget,
            },
            _ => Request::Stats,
        };
        let via_json = Request::from_json(&request.to_json())
            .expect("every request survives its own JSON");
        let via_binary = through_binary(&request, seq, &bindings);
        prop_assert_eq!(&via_binary, &via_json);
        prop_assert_eq!(via_binary.to_json(), request.to_json());
    }

    /// The decoder is a trust boundary: arbitrary bytes either decode to a frame
    /// that re-encodes to a prefix of the input, or fail with a clean error —
    /// never a panic, never an allocation driven by a hostile length.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..160),
        seed_valid in any::<bool>(),
        cut in 0usize..40,
    ) {
        // Half the cases lead with a valid frame truncated mid-way, which is the
        // nastiest shape: a good header with a lying tail.
        let mut stream = Vec::new();
        if seed_valid {
            let valid = RequestFrame {
                seq: 99,
                body: FrameRequest::Arrive { tenant: 1, id: 2, start: 3, end: 4 },
            }
            .encode();
            stream.extend_from_slice(&valid[..cut.min(valid.len())]);
        }
        stream.extend_from_slice(&bytes);
        let mut cursor = Cursor::new(stream.as_slice());
        match RequestFrame::read(&mut cursor) {
            Ok(frame) => {
                let consumed = cursor.position() as usize;
                prop_assert_eq!(frame.encode(), &stream[..consumed]);
            }
            Err(DecodeError::Io(_)) | Err(DecodeError::Protocol { .. }) => {}
        }
        let mut cursor = Cursor::new(stream.as_slice());
        match ResponseFrame::read(&mut cursor) {
            Ok(frame) => {
                let consumed = cursor.position() as usize;
                prop_assert_eq!(frame.encode(), &stream[..consumed]);
            }
            Err(DecodeError::Io(_)) | Err(DecodeError::Protocol { .. }) => {}
        }
    }
}

#[test]
fn oversized_declared_lengths_are_refused_before_allocating() {
    // A bind name one past the limit and a JSON payload one past the limit: both
    // must fail as protocol errors without the decoder trying to read (let alone
    // allocate) the declared body.
    for (opcode, limit) in [(0x04u8, MAX_NAME), (0x00u8, MAX_PAYLOAD)] {
        let mut bytes = vec![0xB5, opcode, 7, 0, 0, 0];
        bytes.extend_from_slice(&((limit as u32) + 1).to_le_bytes());
        match RequestFrame::read(&mut Cursor::new(&bytes)) {
            Err(DecodeError::Protocol { seq: 7, message }) => {
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }
}
