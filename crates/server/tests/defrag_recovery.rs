//! Defragmentation at the server layer: the explicit `compact` op, the
//! auto-defrag pass behind `--defrag-budget`, and their WAL recovery story.
//!
//! The central claim mirrors the durability suite's: **recovered state ≡ an
//! uninterrupted run** — now with compaction records interleaved in the
//! journal.  A compact pass is a pure function of the placements it finds, so
//! replaying its record against the replayed scheduler commits the same moves;
//! these tests kill a durable registry mid-stream and check the rebuilt tenant
//! against an in-process oracle that compacted at the same points.

use std::path::{Path, PathBuf};

use busytime::online::{Defrag, Event, OnlinePolicy, OnlineScheduler};
use busytime::Interval;
use busytime_server::{DurabilityConfig, Engine, Registry, RegistryConfig, Request, Response};
use busytime_workload::{poisson_trace, seeded_rng, DurationModel};

/// A scratch data directory, fresh per call.
fn temp_data_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("busytime-defrag-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, defrag_budget: Option<usize>) -> RegistryConfig {
    RegistryConfig {
        shards: 1,
        durability: Some(DurabilityConfig::new(dir)),
        defrag_budget,
        ..RegistryConfig::default()
    }
}

fn open(engine: &Engine, tenant: &str, capacity: usize) {
    let response = engine.call(Request::Open {
        tenant: tenant.into(),
        capacity,
        policy: Some("first-fit".into()),
    });
    assert!(response.is_ok(), "open failed: {response:?}");
}

fn server_snapshot(engine: &Engine, tenant: &str) -> String {
    match engine.call(Request::Snapshot {
        tenant: tenant.into(),
    }) {
        Response::Snapshot(snapshot) => serde_json::to_string(&snapshot).unwrap(),
        other => panic!("expected a snapshot for '{tenant}', got {other:?}"),
    }
}

fn oracle_snapshot(oracle: &OnlineScheduler) -> String {
    serde_json::to_string(&oracle.snapshot()).unwrap()
}

/// A deterministic fragmenting prefix: two stacked jobs, a third forced onto a
/// second machine, then the departure that makes migrating the survivor pay.
fn fragmenting_events() -> Vec<Event> {
    vec![
        Event::arrival(1, Interval::from_ticks(0, 10)),
        Event::arrival(2, Interval::from_ticks(0, 10)),
        Event::arrival(3, Interval::from_ticks(5, 15)),
        Event::departure(1),
    ]
}

#[test]
fn explicit_compact_matches_the_in_process_scheduler_and_survives_restart() {
    let dir = temp_data_dir("explicit");
    let registry = Registry::with_config(durable_config(&dir, None)).unwrap();
    let engine = registry.engine();
    open(&engine, "t", 2);
    for event in &fragmenting_events() {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
    }

    // The compact op reports the pass and the query sees the amended cost.
    let Response::Compact {
        moves,
        cost_delta,
        cost,
    } = engine.call(Request::Compact {
        tenant: "t".into(),
        budget: 8,
    })
    else {
        panic!("expected a compact response");
    };
    assert_eq!((moves, cost_delta, cost), (1, -5, 15));
    let Response::Query(report) = engine.call(Request::Query { tenant: "t".into() }) else {
        panic!("expected a query response");
    };
    assert_eq!(report.cost_trajectory, vec![10, 10, 20, 15]);
    assert_eq!(report.final_cost, 15);

    // A second pass is a fixpoint: no moves, and (being the identity) no
    // journal record either.
    let Response::Compact { moves, .. } = engine.call(Request::Compact {
        tenant: "t".into(),
        budget: 8,
    }) else {
        panic!("expected a compact response");
    };
    assert_eq!(moves, 0);

    // The in-process oracle compacting at the same point agrees exactly.
    let mut oracle = OnlineScheduler::new(2, OnlinePolicy::FirstFit).unwrap();
    for event in &fragmenting_events() {
        oracle.apply(event).unwrap();
    }
    let effect = oracle.compact(8);
    assert_eq!((effect.moves, effect.cost_delta), (1, -5));
    assert_eq!(server_snapshot(&engine, "t"), oracle_snapshot(&oracle));
    drop(engine);
    registry.shutdown();

    // Restart: the journal holds arrive/depart records *and* the compact
    // record; replay must land on the identical compacted state.
    let registry = Registry::with_config(durable_config(&dir, None)).unwrap();
    let engine = registry.engine();
    assert_eq!(server_snapshot(&engine, "t"), oracle_snapshot(&oracle));
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_works_in_memory_and_reports_unknown_tenants() {
    let registry = Registry::new(1);
    let engine = registry.engine();
    let Response::Error(error) = engine.call(Request::Compact {
        tenant: "ghost".into(),
        budget: 4,
    }) else {
        panic!("expected an error for the unknown tenant");
    };
    assert!(error.message.contains("ghost"), "{error}");

    open(&engine, "t", 2);
    for event in &fragmenting_events() {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
    }
    let Response::Compact { moves, cost, .. } = engine.call(Request::Compact {
        tenant: "t".into(),
        budget: 1,
    }) else {
        panic!("expected a compact response");
    };
    assert_eq!((moves, cost), (1, 15));
    drop(engine);
    registry.shutdown();
}

#[test]
fn auto_defrag_recovery_matches_the_local_defrag_run() {
    // A registry serving with --defrag-budget is killed mid-stream and
    // restarted; at every point its tenant must equal a local `Defrag` run
    // over the same prefix — the same oracle the CI smoke job replays.
    let dir = temp_data_dir("auto");
    let budget = 4;
    let capacity = 3;
    let trace = poisson_trace(
        &mut seeded_rng(23),
        60,
        capacity,
        3.0,
        &DurationModel::HeavyTail { min: 1, max: 60 },
    );
    let mut mirror = Defrag::new(capacity, OnlinePolicy::FirstFit, budget).unwrap();
    let (first, second) = trace.events.split_at(trace.events.len() / 2);

    let registry = Registry::with_config(durable_config(&dir, Some(budget))).unwrap();
    let engine = registry.engine();
    open(&engine, "t", capacity);
    for event in first {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
        mirror.apply(event).unwrap();
    }
    drop(engine);
    registry.shutdown();

    // Recovery replays the interleaved event and compact records.
    let registry = Registry::with_config(durable_config(&dir, Some(budget))).unwrap();
    let engine = registry.engine();
    assert_eq!(
        server_snapshot(&engine, "t"),
        oracle_snapshot(mirror.scheduler())
    );

    // Continuing the stream after recovery stays in lockstep too.
    for event in second {
        assert!(engine.call(Request::from_event("t", event)).is_ok());
        mirror.apply(event).unwrap();
    }
    assert_eq!(
        server_snapshot(&engine, "t"),
        oracle_snapshot(mirror.scheduler())
    );
    assert!(
        mirror.moves() > 0,
        "the trace never fragmented — the oracle is vacuous"
    );
    drop(engine);
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
