//! The TCP front end: a std-only daemon speaking the newline-delimited JSON protocol.
//!
//! [`serve`] accepts connections on a [`TcpListener`] and spawns one thread per
//! connection; each connection thread owns a clone of the [`Engine`] and loops
//! read-line → [`Engine::call`] → write-line.  Malformed lines get an
//! `{"ok": false, …}` response and the connection stays usable, so one confused
//! client never takes the daemon down.  There is deliberately no protocol state on
//! the connection — a client may reconnect at any time and continue driving its
//! tenants, whose schedulers live in the registry shards, not in the socket handler.
//!
//! [`Client`] is the matching blocking client: one request in flight at a time,
//! line-matched to its response.  The CLI's `client` subcommand and the CI smoke test
//! both drive a running daemon through it.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use busytime::online::Trace;
use busytime::report::SimulationReport;
use busytime::OnlinePolicy;

use crate::protocol::{Request, Response};
use crate::registry::Engine;

/// Serve the engine on an already-bound listener, one thread per connection.
///
/// Returns only when the listener errors (callers wanting a graceful stop run this
/// on a dedicated thread and drop the process, as the CLI's `serve` does).
pub fn serve(listener: TcpListener, engine: Engine) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let engine = engine.clone();
        std::thread::Builder::new()
            .name("busytime-conn".to_string())
            .spawn(move || {
                // A dropped connection is the client's business, not the server's.
                let _ = handle_connection(stream, engine);
            })?;
    }
    Ok(())
}

/// Drive one connection: read lines, apply them, write the responses.
fn handle_connection(stream: TcpStream, engine: Engine) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::from_json(&line) {
            Ok(request) => engine.call(request),
            Err(error) => Response::error(error),
        };
        writer.write_all(response.to_json().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// A blocking protocol client: one request in flight at a time over one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and wait for its response.
    ///
    /// Transport failures (connection gone) and undecodable responses are both
    /// reported as `Err`; a well-formed `{"ok": false}` response comes back as
    /// `Ok(Response::Error(..))` — the caller decides whether that fails its task.
    pub fn call(&mut self, request: &Request) -> Result<Response, String> {
        self.writer
            .write_all(request.to_json().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending the request: {e}"))?;
        let mut line = String::new();
        let read = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("reading the response: {e}"))?;
        if read == 0 {
            return Err("the server closed the connection".into());
        }
        Response::from_json(line.trim_end())
    }

    /// Like [`Client::call`], but treats an `{"ok": false}` response as an `Err` too
    /// — for drivers where any failure aborts the run.
    pub fn call_ok(&mut self, request: &Request) -> Result<Response, String> {
        match self.call(request)? {
            Response::Error(error) => Err(format!("{}: {error}", request.op())),
            response => Ok(response),
        }
    }

    /// Drive a whole trace against the server under `tenant`: open the tenant with
    /// the trace's capacity, stream every event, and return the final `query` report.
    ///
    /// A leftover tenant of the same name (e.g. from an earlier drive) is closed and
    /// reopened fresh, so driving the same trace twice produces the same report —
    /// the run replays the trace from empty state by definition.
    ///
    /// This is the CLI `client` subcommand's engine; it is also what the CI smoke
    /// runs against a freshly started daemon.
    pub fn drive_trace(
        &mut self,
        tenant: &str,
        trace: &Trace,
        policy: OnlinePolicy,
    ) -> Result<SimulationReport, String> {
        let open = Request::Open {
            tenant: tenant.to_string(),
            capacity: trace.capacity,
            policy: Some(policy.name().to_string()),
        };
        if let Response::Error(error) = self.call(&open)? {
            if !error.contains("already open") {
                return Err(format!("open: {error}"));
            }
            self.call_ok(&Request::Close {
                tenant: tenant.to_string(),
            })?;
            self.call_ok(&open)?;
        }
        for event in &trace.events {
            self.call_ok(&Request::from_event(tenant, event))?;
        }
        match self.call_ok(&Request::Query {
            tenant: tenant.to_string(),
        })? {
            Response::Query(report) => Ok(report),
            other => Err(format!("expected a query response, got {other:?}")),
        }
    }
}
