//! The TCP front end: a std-only daemon speaking NDJSON and binary framing on the
//! same listener.
//!
//! [`serve`] accepts connections on a [`TcpListener`] and spawns one thread per
//! connection.  Each connection thread decides the framing of **every message** by
//! peeking its first byte — `0xB5` opens a binary frame ([`crate::frame`]), anything
//! else is a newline-delimited JSON line — so binary and NDJSON clients share one
//! port and one connection may mix framings; each response travels in the framing of
//! its request.
//!
//! The handler is **pipelining-aware**: it keeps decoding requests while its read
//! buffer holds more input (up to a batch cap), hands the whole decoded batch to
//! [`Engine::call_many`] — which coalesces the requests into one bounded-channel
//! send per shard — and only flushes the response buffer once the read side has no
//! further buffered input.  A lone request-per-round-trip client therefore sees one
//! flush per request, exactly as before, while a client with `k` requests in flight
//! sees the per-request syscalls, JSON costs and channel sends amortized across the
//! window.  The matching client invariant: **finish writing every request you have
//! begun before blocking on responses** (any client that writes whole requests —
//! like [`Client`] — satisfies this trivially).
//!
//! Malformed NDJSON lines get an `{"ok": false, …}` response and the connection
//! stays usable.  A malformed **binary** frame cannot be skipped — the stream has no
//! recoverable frame boundary — so the handler answers a final error frame and drops
//! the connection; subsequent frames on *other* connections are unaffected, and the
//! fuzz suite pins that no hostile byte soup can panic the daemon or desync an
//! honest connection.  There is deliberately no protocol state on the connection
//! beyond the tenant-id bindings of the binary fast path — a client may reconnect at
//! any time and continue driving its tenants, whose schedulers live in the registry
//! shards, not in the socket handler.
//!
//! [`Client`] is the matching blocking client: NDJSON by default
//! ([`Client::connect`]), binary on request ([`Client::connect_binary`]), one
//! request in flight through [`Client::call`] or a window of them through
//! [`Client::pipeline`] / [`Client::drive_trace_pipelined`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use busytime::online::Trace;
use busytime::report::SimulationReport;
use busytime::OnlinePolicy;

use crate::faults::{FaultKind, FaultPlan};
use crate::frame::{DecodeError, FrameRequest, FrameResponse, RequestFrame, ResponseFrame, MAGIC};
use crate::protocol::{ErrorCode, Request, Response, WireError};
use crate::registry::Engine;

/// Most requests decoded into one [`Engine::call_many`] batch.  Bounds the
/// per-connection memory a fire-hose client can pin while still amortizing the
/// shard handoff across a deep pipeline window.
pub const MAX_BATCH: usize = 128;

/// Most tenant-id bindings one connection may hold (the binary `bind` table).
/// A connection needing more is rebinding pathologically; the cap keeps a
/// hostile client from growing the table without bound.
pub const MAX_BINDINGS: usize = 1 << 20;

/// Serve the engine on an already-bound listener, one thread per connection.
///
/// Returns only when the listener errors (callers wanting a graceful stop use
/// [`spawn`] and its [`ServerHandle`], as the in-process tests and benchmarks do).
pub fn serve(listener: TcpListener, engine: Engine) -> std::io::Result<()> {
    accept_loop(listener, engine, None)
}

/// Serve the engine on a background accept thread, returning a handle that
/// stops it.
///
/// Dropping the handle (or calling [`ServerHandle::stop`]) signals the accept
/// loop, wakes it with a loopback connection, and joins the accept thread —
/// no new connections are admitted afterwards.  Connection threads already
/// running are not interrupted; they exit when their clients hang up, and the
/// [`crate::registry::Registry::shutdown`] that typically follows blocks until
/// the engine clones they hold are gone.
pub fn spawn(listener: TcpListener, engine: Engine) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = std::thread::Builder::new()
        .name("busytime-accept".to_string())
        .spawn({
            let stop = stop.clone();
            move || {
                // A listener error ends the accept loop; connections already
                // handed off keep running.
                let _ = accept_loop(listener, engine, Some(stop));
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// A running background server (see [`spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread (also runs on drop).
    pub fn stop(self) {}
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept`; a loopback connection wakes it so
        // it can observe the flag.  An unspecified bind address (0.0.0.0 / ::)
        // is not connectable, so substitute the matching loopback.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(500));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The shared accept loop: one handler thread per connection, with an optional
/// stop flag checked between accepts.
fn accept_loop(
    listener: TcpListener,
    engine: Engine,
    stop: Option<Arc<AtomicBool>>,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        if stop
            .as_ref()
            .is_some_and(|stop| stop.load(Ordering::Acquire))
        {
            break;
        }
        let stream = stream?;
        let engine = engine.clone();
        std::thread::Builder::new()
            .name("busytime-conn".to_string())
            .spawn(move || {
                // A dropped connection is the client's business, not the server's.
                let _ = handle_connection(stream, engine);
            })?;
    }
    Ok(())
}

/// One decoded inbound message, waiting in the connection's dispatch batch.
enum Pending {
    /// An NDJSON request for the engine.
    NdjsonCall(Request),
    /// An NDJSON line already answered locally (malformed input).
    NdjsonReply(Response),
    /// A binary request for the engine.
    BinaryCall {
        /// Echoed sequence number.
        seq: u32,
        /// The decoded request.
        request: Request,
    },
    /// A binary frame already answered locally (bind acks, unbound tenant ids).
    BinaryReply {
        /// Echoed sequence number.
        seq: u32,
        /// The ready response frame body.
        frame: FrameResponse,
    },
}

/// The connection-local state of the binary fast path: tenant names by id, ids by
/// name, assigned densely in bind order (the client mirrors this assignment).
#[derive(Default)]
struct Bindings {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Bindings {
    /// Bind `name`, returning its (possibly pre-existing) id, or an error once
    /// the table is full.
    fn bind(&mut self, name: String) -> Result<u32, String> {
        if let Some(&id) = self.ids.get(&name) {
            return Ok(id);
        }
        if self.names.len() >= MAX_BINDINGS {
            return Err(format!(
                "this connection already holds {MAX_BINDINGS} tenant bindings"
            ));
        }
        let id = self.names.len() as u32;
        self.ids.insert(name.clone(), id);
        self.names.push(name);
        Ok(id)
    }

    /// The name bound to `id`, if any.
    fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }
}

/// Map one decoded binary frame to a pending item, resolving tenant ids through
/// the connection's binding table (binds mutate it for the *rest of the batch*,
/// so a bind and its first use may share a window).
fn pend_binary(frame: RequestFrame, bindings: &mut Bindings) -> Pending {
    let RequestFrame { seq, body } = frame;
    let unbound = |id: u32| Pending::BinaryReply {
        seq,
        frame: FrameResponse::Error {
            code: ErrorCode::Malformed,
            retry_after_ms: 0,
            message: format!("tenant id {id} is not bound on this connection"),
        },
    };
    match body {
        FrameRequest::Bind { name } => match bindings.bind(name) {
            Ok(tenant) => Pending::BinaryReply {
                seq,
                frame: FrameResponse::Bound { tenant },
            },
            Err(message) => Pending::BinaryReply {
                seq,
                frame: FrameResponse::Error {
                    code: ErrorCode::Rejected,
                    retry_after_ms: 0,
                    message,
                },
            },
        },
        FrameRequest::Arrive {
            tenant,
            id,
            start,
            end,
        } => match bindings.name(tenant) {
            Some(name) => Pending::BinaryCall {
                seq,
                request: Request::Arrive {
                    tenant: name.to_string(),
                    id,
                    job: (start, end),
                },
            },
            None => unbound(tenant),
        },
        FrameRequest::Depart { tenant, id } => match bindings.name(tenant) {
            Some(name) => Pending::BinaryCall {
                seq,
                request: Request::Depart {
                    tenant: name.to_string(),
                    id,
                },
            },
            None => unbound(tenant),
        },
        FrameRequest::Query { tenant } => match bindings.name(tenant) {
            Some(name) => Pending::BinaryCall {
                seq,
                request: Request::Query {
                    tenant: name.to_string(),
                },
            },
            None => unbound(tenant),
        },
        FrameRequest::Json { payload } => match Request::from_json(&payload) {
            Ok(request) => Pending::BinaryCall { seq, request },
            Err(error) => Pending::BinaryReply {
                seq,
                frame: FrameResponse::Error {
                    code: ErrorCode::Malformed,
                    retry_after_ms: 0,
                    message: error,
                },
            },
        },
    }
}

/// The binary shape of an engine response: `Event` and `Error` have fixed-layout
/// frames, everything else rides in a JSON frame carrying the exact NDJSON body.
fn frame_response(response: Response) -> FrameResponse {
    match response {
        Response::Event {
            machine,
            cost_delta,
            cost,
        } => FrameResponse::Event {
            machine: machine as u64,
            cost_delta,
            cost,
        },
        Response::Error(error) => FrameResponse::Error {
            code: error.code,
            retry_after_ms: error.retry_after_ms.unwrap_or(0),
            message: error.message,
        },
        other => FrameResponse::Json {
            payload: other.to_json(),
        },
    }
}

/// Dispatch one decoded batch: run the engine calls as a single
/// [`Engine::call_many`] batch, then write every response — engine answers and
/// locally answered frames alike — in arrival order and framing.
fn dispatch(
    engine: &Engine,
    batch: Vec<Pending>,
    writer: &mut impl Write,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    let calls: Vec<Request> = batch
        .iter()
        .filter_map(|pending| match pending {
            Pending::NdjsonCall(request) => Some(request.clone()),
            Pending::BinaryCall { request, .. } => Some(request.clone()),
            _ => None,
        })
        .collect();
    let mut responses = if calls.is_empty() {
        Vec::new()
    } else {
        engine.call_many(calls)
    }
    .into_iter();
    let mut next = || {
        responses
            .next()
            .unwrap_or_else(|| Response::error("the engine returned no response"))
    };
    for pending in batch {
        match pending {
            Pending::NdjsonCall(_) => {
                writer.write_all(next().to_json().as_bytes())?;
                writer.write_all(b"\n")?;
            }
            Pending::NdjsonReply(response) => {
                writer.write_all(response.to_json().as_bytes())?;
                writer.write_all(b"\n")?;
            }
            Pending::BinaryCall { seq, .. } => {
                let frame = ResponseFrame {
                    seq,
                    body: frame_response(next()),
                };
                frame.write_into(scratch, writer)?;
            }
            Pending::BinaryReply { seq, frame } => {
                ResponseFrame { seq, body: frame }.write_into(scratch, writer)?;
            }
        }
    }
    Ok(())
}

/// Flush the response buffer, first consulting the fault plan: a planned
/// `SlowWrite` stalls briefly before flushing, and a planned `ConnDrop` fails
/// the flush outright — the handler returns, the socket closes, and whatever
/// the buffer held is lost exactly as a network partition would lose it.
fn gated_flush(faults: Option<&FaultPlan>, writer: &mut impl Write) -> std::io::Result<()> {
    if let Some(plan) = faults {
        if plan.fire(FaultKind::SlowWrite) {
            std::thread::sleep(Duration::from_millis(40));
        }
        if plan.fire(FaultKind::ConnDrop) {
            return Err(std::io::Error::other("injected connection drop"));
        }
    }
    writer.flush()
}

/// Drive one connection: decode buffered requests into batches, dispatch each
/// batch through the engine, and flush responses when the read side goes idle.
fn handle_connection(stream: TcpStream, engine: Engine) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let faults = engine.fault_plan().cloned();
    let mut reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(64 * 1024, stream);
    let mut bindings = Bindings::default();
    let mut scratch = Vec::with_capacity(256);
    let mut line = String::new();
    'connection: loop {
        // Blocks only when nothing is buffered — and everything written so far
        // has been flushed by then, so the peer is never left waiting on us.
        let first = match reader.fill_buf() {
            Ok([]) => break,
            Ok(buf) => buf[0],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let mut batch: Vec<Pending> = Vec::new();
        let mut peek = Some(first);
        loop {
            let byte = match peek.take() {
                Some(byte) => byte,
                None => match reader.fill_buf() {
                    Ok([]) => {
                        // EOF with a batch in hand: answer it, then close.
                        dispatch(&engine, batch, &mut writer, &mut scratch)?;
                        gated_flush(faults.as_ref(), &mut writer)?;
                        break 'connection;
                    }
                    Ok(buf) => buf[0],
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                },
            };
            if byte == MAGIC {
                match RequestFrame::read(&mut reader) {
                    Ok(frame) => batch.push(pend_binary(frame, &mut bindings)),
                    Err(error) => {
                        // No recoverable frame boundary: answer what we owe plus
                        // a final error frame, then drop the connection.
                        dispatch(&engine, batch, &mut writer, &mut scratch)?;
                        if let DecodeError::Protocol { seq, message } = error {
                            let frame = ResponseFrame {
                                seq,
                                body: FrameResponse::Error {
                                    code: ErrorCode::Malformed,
                                    retry_after_ms: 0,
                                    message,
                                },
                            };
                            frame.write_into(&mut scratch, &mut writer)?;
                        }
                        gated_flush(faults.as_ref(), &mut writer)?;
                        break 'connection;
                    }
                }
            } else {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    dispatch(&engine, batch, &mut writer, &mut scratch)?;
                    gated_flush(faults.as_ref(), &mut writer)?;
                    break 'connection;
                }
                let text = line.trim();
                if !text.is_empty() {
                    batch.push(match Request::from_json(text) {
                        Ok(request) => Pending::NdjsonCall(request),
                        Err(error) => {
                            Pending::NdjsonReply(Response::fail(ErrorCode::Malformed, error))
                        }
                    });
                }
            }
            if batch.len() >= MAX_BATCH || reader.buffer().is_empty() {
                break;
            }
        }
        dispatch(&engine, batch, &mut writer, &mut scratch)?;
        // The flush fix: flush only when the read side has no further buffered
        // input — a pipelining client's window drains in one write.
        if reader.buffer().is_empty() {
            gated_flush(faults.as_ref(), &mut writer)?;
        }
    }
    Ok(())
}

/// Which framing a [`Client`] speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Newline-delimited JSON (the default, and the most interoperable).
    Ndjson,
    /// Binary frames with the fixed-layout fast path for `arrive`/`depart`/
    /// `query` and JSON fallback frames for everything else.
    Binary,
}

impl Framing {
    /// The name used on command lines and in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Framing::Ndjson => "ndjson",
            Framing::Binary => "binary",
        }
    }

    /// Parse a command-line framing name.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "ndjson" | "json" => Ok(Framing::Ndjson),
            "binary" | "bin" => Ok(Framing::Binary),
            other => Err(format!(
                "unknown framing '{other}' (expected ndjson or binary)"
            )),
        }
    }
}

/// How a resilient [`Client`] rides out connection failures.
///
/// Reconnects back off exponentially from `base_delay_ms` to `max_delay_ms`
/// with deterministic jitter drawn from `seed` (same seed, same delays — the
/// chaos tests replay byte-identical schedules).  `request_timeout_ms`, when
/// non-zero, bounds every blocking read so a stalled server surfaces as a
/// retryable transport error instead of a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Connection attempts per outage before giving up.
    pub attempts: u32,
    /// Backoff before the first reconnect attempt.
    pub base_delay_ms: u64,
    /// Backoff cap.
    pub max_delay_ms: u64,
    /// Read deadline per response; `0` waits forever.
    pub request_timeout_ms: u64,
    /// Seed for the jitter generator.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 1000,
            request_timeout_ms: 5000,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The backoff before reconnect `attempt` (0-based): exponential from the
    /// base, capped, with up to 50% deterministic jitter subtracted so waves
    /// of reconnecting clients spread out.
    fn delay_ms(&self, attempt: u32, jitter: &mut u64) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_delay_ms.max(1));
        // xorshift64*: tiny and deterministic; seeded per outage.
        let mut x = *jitter | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *jitter = x;
        exp - x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (exp / 2 + 1)
    }
}

/// Total outages one logical operation will heal across before giving up —
/// a backstop against a server that drops every single connection.
const MAX_HEALS: u32 = 32;

/// A blocking protocol client over one connection, in either framing.
///
/// [`Client::call`] keeps the one-request-in-flight behaviour the CLI and the
/// smoke tests rely on.  The split [`Client::send`] / [`Client::flush`] /
/// [`Client::recv`] API underneath lets callers keep a window of requests in
/// flight; [`Client::pipeline`] packages the standard windowed loop, and the
/// load generator drives the split API directly to timestamp every request.
///
/// In binary framing the client transparently `bind`s tenant names to
/// connection-local ids on first use, mirroring the server's dense id
/// assignment, and consumes the `bound` acknowledgements inside [`Client::recv`]
/// — callers never see them.
///
/// A client built with [`Client::connect_resilient`] additionally self-heals:
/// when the connection dies it reconnects with capped, jittered exponential
/// backoff, re-binds its tenants in id order (the dense mirror survives the
/// new connection), and [`Client::drive_trace_pipelined`] resumes the trace
/// from the server's acknowledged-event count so every event applies exactly
/// once even when the failure ate in-flight responses.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    framing: Framing,
    /// Next sequence number for binary frames.
    seq: u32,
    /// Tenant name → connection-local id (binary framing only).
    bindings: HashMap<String, u32>,
    scratch: Vec<u8>,
    /// Reconnect policy; `None` fails fast on the first transport error.
    retry: Option<RetryPolicy>,
    /// The resolved address reconnects go to.
    addr: Option<SocketAddr>,
}

impl Client {
    /// Connect to a running daemon speaking NDJSON.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, Framing::Ndjson)
    }

    /// Connect to a running daemon speaking the binary framing.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, Framing::Binary)
    }

    /// Connect with an explicit framing.
    pub fn connect_with(addr: impl ToSocketAddrs, framing: Framing) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, framing, None, None)
    }

    /// Connect with an explicit framing and a self-healing [`RetryPolicy`]
    /// (the initial connect retries with the same backoff as reconnects).
    pub fn connect_resilient(
        addr: impl ToSocketAddrs,
        framing: Framing,
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("the address resolved to nothing"))?;
        let mut jitter = policy.seed;
        let mut last = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(
                    policy.delay_ms(attempt - 1, &mut jitter),
                ));
            }
            match TcpStream::connect(addr) {
                Ok(stream) => return Self::from_stream(stream, framing, Some(policy), Some(addr)),
                Err(error) => last = Some(error),
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts were made")))
    }

    /// Wrap a fresh stream in the buffered reader/writer pair.
    fn from_stream(
        stream: TcpStream,
        framing: Framing,
        retry: Option<RetryPolicy>,
        addr: Option<SocketAddr>,
    ) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        if let Some(policy) = &retry {
            if policy.request_timeout_ms > 0 {
                stream.set_read_timeout(Some(Duration::from_millis(policy.request_timeout_ms)))?;
            }
        }
        Ok(Client {
            reader: BufReader::with_capacity(64 * 1024, stream.try_clone()?),
            writer: BufWriter::with_capacity(64 * 1024, stream),
            framing,
            seq: 0,
            bindings: HashMap::new(),
            scratch: Vec::with_capacity(256),
            retry,
            addr,
        })
    }

    /// The framing this client speaks.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Whether this client heals transport failures by reconnecting.
    pub fn is_resilient(&self) -> bool {
        self.retry.is_some() && self.addr.is_some()
    }

    /// Replace the dead connection with a fresh one, backing off between
    /// attempts per the retry policy, and re-bind every tenant in id order so
    /// the dense id mirror stays valid.  `cause` is folded into the error when
    /// every attempt fails.
    fn reconnect(&mut self, cause: &str) -> Result<(), String> {
        let (Some(policy), Some(addr)) = (self.retry, self.addr) else {
            return Err(cause.to_string());
        };
        let mut jitter = policy.seed ^ 0x9e37_79b9_7f4a_7c15;
        for attempt in 0..policy.attempts.max(1) {
            std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt, &mut jitter)));
            let Ok(fresh) = Self::from_stream(
                match TcpStream::connect(addr) {
                    Ok(stream) => stream,
                    Err(_) => continue,
                },
                self.framing,
                self.retry,
                self.addr,
            ) else {
                continue;
            };
            let bindings = std::mem::take(&mut self.bindings);
            *self = fresh;
            // Replay the binds in id order: the new connection's server table
            // assigns the same dense ids, and `recv` consumes the `bound`
            // acknowledgements transparently.
            let mut names: Vec<(u32, String)> =
                bindings.into_iter().map(|(name, id)| (id, name)).collect();
            names.sort_unstable();
            for (_, name) in names {
                let id = self.bind_id(&name)?;
                debug_assert_eq!(id as usize, self.bindings.len() - 1);
            }
            self.flush()?;
            return Ok(());
        }
        Err(format!(
            "the connection died ({cause}) and {} reconnect attempt(s) to {addr} failed",
            policy.attempts.max(1)
        ))
    }

    /// Send one request, healing the connection and retrying on transport
    /// errors when a retry policy is set.  Only safe for requests the caller
    /// knows are idempotent-or-refused (the drive's `open`/`close`/`query`).
    fn call_healed(&mut self, request: &Request) -> Result<Response, String> {
        let mut error = match self.call(request) {
            Ok(response) => return Ok(response),
            Err(error) => error,
        };
        for _ in 0..MAX_HEALS {
            if !self.is_resilient() {
                break;
            }
            self.reconnect(&error)?;
            match self.call(request) {
                Ok(response) => return Ok(response),
                Err(next) => error = next,
            }
        }
        Err(error)
    }

    /// Queue one request into the connection's write buffer **without flushing**.
    ///
    /// In binary framing, a fast-path request for a not-yet-bound tenant first
    /// queues a `bind` frame; the matching `bound` acknowledgement is consumed
    /// transparently by [`Client::recv`].  Call [`Client::flush`] before
    /// blocking on responses.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        match self.framing {
            Framing::Ndjson => self
                .writer
                .write_all(request.to_json().as_bytes())
                .and_then(|()| self.writer.write_all(b"\n"))
                .map_err(|e| format!("sending the request: {e}")),
            Framing::Binary => {
                let body = match request {
                    Request::Arrive { tenant, id, job } => {
                        let tenant = self.bind_id(tenant)?;
                        FrameRequest::Arrive {
                            tenant,
                            id: *id,
                            start: job.0,
                            end: job.1,
                        }
                    }
                    Request::Depart { tenant, id } => {
                        let tenant = self.bind_id(tenant)?;
                        FrameRequest::Depart { tenant, id: *id }
                    }
                    Request::Query { tenant } => {
                        let tenant = self.bind_id(tenant)?;
                        FrameRequest::Query { tenant }
                    }
                    other => FrameRequest::Json {
                        payload: other.to_json(),
                    },
                };
                self.send_frame(body)
            }
        }
    }

    /// Queue one binary frame, assigning the next sequence number.
    fn send_frame(&mut self, body: FrameRequest) -> Result<(), String> {
        let frame = RequestFrame {
            seq: self.seq,
            body,
        };
        self.seq = self.seq.wrapping_add(1);
        self.scratch.clear();
        frame.encode_into(&mut self.scratch);
        self.writer
            .write_all(&self.scratch)
            .map_err(|e| format!("sending the request: {e}"))
    }

    /// The connection-local id for `tenant`, queueing a `bind` frame on first
    /// use (mirroring the server's dense assignment, so no round trip is
    /// needed).
    fn bind_id(&mut self, tenant: &str) -> Result<u32, String> {
        if let Some(&id) = self.bindings.get(tenant) {
            return Ok(id);
        }
        let id = self.bindings.len() as u32;
        self.bindings.insert(tenant.to_string(), id);
        self.send_frame(FrameRequest::Bind {
            name: tenant.to_string(),
        })?;
        Ok(id)
    }

    /// Flush every queued request to the socket.
    pub fn flush(&mut self) -> Result<(), String> {
        self.writer
            .flush()
            .map_err(|e| format!("flushing the connection: {e}"))
    }

    /// Read the next response, blocking.  Binary `bound` acknowledgements are
    /// validated against the client's mirrored id table and skipped.
    pub fn recv(&mut self) -> Result<Response, String> {
        match self.framing {
            Framing::Ndjson => {
                let mut line = String::new();
                let read = self
                    .reader
                    .read_line(&mut line)
                    .map_err(|e| format!("reading the response: {e}"))?;
                if read == 0 {
                    return Err("the server closed the connection".into());
                }
                Response::from_json(line.trim_end())
            }
            Framing::Binary => loop {
                let frame = ResponseFrame::read(&mut self.reader)
                    .map_err(|e| format!("reading the response: {e}"))?;
                match frame.body {
                    FrameResponse::Bound { tenant } => {
                        if tenant as usize >= self.bindings.len() {
                            return Err(format!(
                                "the server acknowledged tenant id {tenant}, which this \
                                 client never bound"
                            ));
                        }
                    }
                    FrameResponse::Event {
                        machine,
                        cost_delta,
                        cost,
                    } => {
                        let machine = usize::try_from(machine)
                            .map_err(|_| format!("machine id {machine} does not fit"))?;
                        return Ok(Response::Event {
                            machine,
                            cost_delta,
                            cost,
                        });
                    }
                    FrameResponse::Error {
                        code,
                        retry_after_ms,
                        message,
                    } => {
                        return Ok(Response::Error(WireError {
                            code,
                            message,
                            retry_after_ms: (retry_after_ms > 0).then_some(retry_after_ms),
                        }))
                    }
                    FrameResponse::Json { payload } => return Response::from_json(&payload),
                }
            },
        }
    }

    /// Send one request and wait for its response.
    ///
    /// Transport failures (connection gone) and undecodable responses are both
    /// reported as `Err`; a well-formed `{"ok": false}` response comes back as
    /// `Ok(Response::Error(..))` — the caller decides whether that fails its task.
    pub fn call(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }

    /// Like [`Client::call`], but treats an `{"ok": false}` response as an `Err` too
    /// — for drivers where any failure aborts the run.
    pub fn call_ok(&mut self, request: &Request) -> Result<Response, String> {
        match self.call(request)? {
            Response::Error(error) => Err(format!("{}: {error}", request.op())),
            response => Ok(response),
        }
    }

    /// Apply `requests` with up to `depth` in flight, returning the responses in
    /// request order.
    ///
    /// The window refills once it half-drains and the connection is flushed
    /// before every potential block, so neither side ever waits on an unflushed
    /// buffer.  `depth` is clamped to at least 1; depth 1 is exactly the
    /// [`Client::call`] round-trip loop.
    pub fn pipeline(
        &mut self,
        requests: &[Request],
        depth: usize,
    ) -> Result<Vec<Response>, String> {
        let depth = depth.max(1);
        let mut responses = Vec::with_capacity(requests.len());
        let mut sent = 0usize;
        while responses.len() < requests.len() {
            if sent < requests.len() && sent - responses.len() <= depth / 2 {
                while sent < requests.len() && sent - responses.len() < depth {
                    self.send(&requests[sent])?;
                    sent += 1;
                }
                self.flush()?;
            }
            responses.push(self.recv()?);
        }
        Ok(responses)
    }

    /// Drive a whole trace against the server under `tenant`: open the tenant with
    /// the trace's capacity, stream every event, and return the final `query` report.
    ///
    /// A leftover tenant of the same name (e.g. from an earlier drive) is closed and
    /// reopened fresh, so driving the same trace twice produces the same report —
    /// the run replays the trace from empty state by definition.
    ///
    /// This is the CLI `client` subcommand's engine; it is also what the CI smoke
    /// runs against a freshly started daemon.
    pub fn drive_trace(
        &mut self,
        tenant: &str,
        trace: &Trace,
        policy: OnlinePolicy,
    ) -> Result<SimulationReport, String> {
        self.drive_trace_pipelined(tenant, trace, policy, 1)
    }

    /// [`Client::drive_trace`] with up to `depth` events in flight.
    ///
    /// The responses stay in event order whatever the depth, so the final report
    /// is identical at every depth — the pipeline oracle test pins this against
    /// a local replay.  An error response to any event aborts the drive (after
    /// draining the window).
    ///
    /// On a resilient client a transport failure mid-trace does not abort:
    /// the client reconnects, asks the server how many events the tenant has
    /// durably applied (`query`'s event counter — responses lost with the
    /// connection were still applied), and resumes the pipeline from exactly
    /// that event, so every trace event applies exactly once.
    pub fn drive_trace_pipelined(
        &mut self,
        tenant: &str,
        trace: &Trace,
        policy: OnlinePolicy,
        depth: usize,
    ) -> Result<SimulationReport, String> {
        let open = Request::Open {
            tenant: tenant.to_string(),
            capacity: trace.capacity,
            policy: Some(policy.name().to_string()),
        };
        if let Response::Error(error) = self.call_healed(&open)? {
            if error.code != ErrorCode::AlreadyOpen {
                return Err(format!("open: {error}"));
            }
            self.call_ok_healed(&Request::Close {
                tenant: tenant.to_string(),
            })?;
            self.call_ok_healed(&open)?;
        }
        let requests: Vec<Request> = trace
            .events
            .iter()
            .map(|event| Request::from_event(tenant, event))
            .collect();
        let mut start = 0usize;
        let mut heals = 0u32;
        while start < requests.len() || (start == 0 && requests.is_empty()) {
            match self.pipeline(&requests[start..], depth) {
                Ok(responses) => {
                    for (i, response) in responses.into_iter().enumerate() {
                        if let Response::Error(error) = response {
                            return Err(format!("{}: {error}", requests[start + i].op()));
                        }
                    }
                    break;
                }
                Err(error) if self.is_resilient() && heals < MAX_HEALS => {
                    heals += 1;
                    self.reconnect(&error)?;
                    // The applied-event counter tells us where the server
                    // actually got to — acknowledged or not.
                    start = match self.call_ok_healed(&Request::Query {
                        tenant: tenant.to_string(),
                    })? {
                        Response::Query(report) => report.events,
                        other => return Err(format!("expected a query response, got {other:?}")),
                    };
                }
                Err(error) => return Err(error),
            }
        }
        match self.call_ok_healed(&Request::Query {
            tenant: tenant.to_string(),
        })? {
            Response::Query(report) => Ok(report),
            other => Err(format!("expected a query response, got {other:?}")),
        }
    }

    /// [`Client::call_healed`] with `{"ok": false}` responses turned into `Err`.
    fn call_ok_healed(&mut self, request: &Request) -> Result<Response, String> {
        match self.call_healed(request)? {
            Response::Error(error) => Err(format!("{}: {error}", request.op())),
            response => Ok(response),
        }
    }
}
