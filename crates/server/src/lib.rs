//! # busytime-server
//!
//! A multi-tenant, sharded scheduling service over the `busytime` online engine.
//!
//! The offline solvers answer one instance per call; the online engine (PR 4) absorbs
//! event streams at millions of events per second — but only from a single in-process
//! caller.  This crate turns that engine into a **long-lived service**: every tenant
//! keeps a live [`busytime::OnlineScheduler`] in the server across requests, so each
//! arrival, departure or query is an incremental `O(log m)` mutation of standing
//! state, never a re-solve.
//!
//! Four layers, bottom up:
//!
//! * [`protocol`] — the wire format: newline-delimited JSON, one `{"op": …}` request
//!   object per line, one `{"ok": …}` response per line.  `PROTOCOL.md` at the
//!   repository root documents every operation with worked examples, and a test
//!   round-trips those exact examples through the serde impls here.
//! * [`frame`] — the compact binary framing negotiated per message on the same
//!   listener: a `0xB5` magic byte opens a length-prefixed frame with a
//!   fixed-layout fast path for `arrive`/`depart`/`query` (tenant id + job ticks
//!   as raw little-endian integers) and a JSON-payload frame for the rare ops.
//!   `PROTOCOL.md`'s byte-level worked example is decoded and re-encoded by the
//!   real codec in a test, and a proptest pins binary round-trip ≡ JSON
//!   round-trip for every operation.
//! * [`registry`] — the sharded multi-tenant state: tenants hash onto `N` worker
//!   shards, each shard a single thread owning its tenants' schedulers outright (no
//!   locks on the hot path); requests travel over bounded channels, so a busy shard
//!   applies backpressure rather than buffering without limit.  Batch solves bypass
//!   the shards entirely and fan out through [`busytime::Solver::solve_batch`] on the
//!   work-stealing pool.
//! * [`server`] — the std-only TCP front end ([`std::net::TcpListener`], one thread
//!   per connection) plus the matching blocking [`Client`], including the
//!   [`Client::drive_trace`] helper the CLI `client` subcommand and the CI smoke use.
//!   Both sides pipeline: the handler batches every request buffered on the socket
//!   into one [`Engine::call_many`] shard handoff and flushes once the read side
//!   goes idle, and [`Client::pipeline`] keeps a window of `k` requests in flight.
//!
//! Snapshot/restore rides on [`busytime::OnlineSnapshot`]: `{"op": "snapshot"}`
//! serializes a tenant's live schedule to JSON, `{"op": "restore"}` rebuilds it —
//! on the same server, another server, or under another tenant name — and the
//! restored scheduler's future decisions match the never-snapshotted run exactly
//! (pinned by the snapshot oracle tests).
//!
//! **Durability** is opt-in: [`Registry::with_durability`] points the registry at a
//! data directory and every shard then journals applied mutations through the
//! `busytime-durability` write-ahead log before acknowledging them, rebuilds its
//! tenants from disk at startup, and compacts each tenant's log behind a snapshot
//! once it crosses a threshold.  `{"op": "persist"}` forces a compaction,
//! `{"op": "wal_stats"}` reads the log counters.  Without a config the registry is
//! byte-for-byte the in-memory server it always was.
//!
//! ```
//! use busytime_server::{Engine, Registry, Request, Response};
//!
//! let registry = Registry::new(4);
//! let engine: Engine = registry.engine();
//! engine.call(Request::Open {
//!     tenant: "acme".into(),
//!     capacity: 2,
//!     policy: None,
//! });
//! let response = engine.call(Request::Arrive {
//!     tenant: "acme".into(),
//!     id: 1,
//!     job: (0, 10),
//! });
//! assert!(matches!(
//!     response,
//!     Response::Event { machine: 0, cost_delta: 10, cost: 10 }
//! ));
//! drop(engine);
//! registry.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod faults;
pub mod frame;
pub mod protocol;
pub mod registry;
pub mod server;

pub use faults::{FaultKind, FaultPlan, FaultSpec};
pub use frame::{FrameRequest, FrameResponse, RequestFrame, ResponseFrame};
pub use protocol::{
    BatchInstance, BatchOutcome, ErrorCode, HealthReport, Request, Response, ShardHealth,
    TenantHealth, WireError,
};
pub use registry::{AdmissionConfig, DurabilityConfig, Engine, Registry, RegistryConfig};
pub use server::{serve, spawn, Client, Framing, RetryPolicy, ServerHandle};
