//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every protocol message is one JSON object on one line.  Requests carry an `"op"`
//! discriminant naming the operation and, for tenant-scoped operations, a `"tenant"`
//! key; responses always carry `"ok"` (`true`/`false`) plus the operation's payload, so
//! a client can route on two fixed keys without knowing the full schema.  The complete
//! schema — every operation with a worked request/response example — is documented in
//! `PROTOCOL.md` at the repository root, and the `protocol_doc` test round-trips every
//! example from that document through the types here, so the document cannot drift from
//! the implementation.
//!
//! The serde impls are written by hand against the vendored `serde::Value` tree (the
//! derive stub does not cover enums), which also buys the protocol two properties the
//! derive would not give: *missing* optional keys are accepted (not just `null`), and
//! unknown `"op"` names produce a descriptive error naming the valid operations.

use busytime::online::{Event, OnlineSnapshot};
use busytime::report::{ScheduleReport, SimulationReport};
use busytime_durability::WalStats;
use serde::{Deserialize, Error, Serialize, Value};

/// Build a JSON object from `(key, value)` pairs.
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Read an optional key: absent and `null` both mean `None`.
fn optional<T: Deserialize>(value: &Value, key: &str) -> Result<Option<T>, Error> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => T::deserialize(v).map(Some),
    }
}

/// One instance inside a `batch` request: the same shape as the CLI's instance files
/// (`{"capacity": g, "jobs": [[start, end], …]}`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchInstance {
    /// The parallelism parameter `g`.
    pub capacity: usize,
    /// Jobs as `[start, end)` tick pairs.
    pub jobs: Vec<(i64, i64)>,
}

/// A request to the scheduling daemon.
///
/// Tenant-scoped operations (everything except [`Request::Batch`] and
/// [`Request::Stats`]) are routed to the shard owning the tenant and applied to its
/// live [`busytime::OnlineScheduler`] single-threaded, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a tenant: an empty live schedule with the given capacity and policy.
    Open {
        /// The tenant's name (the sharding key).
        tenant: String,
        /// The machine capacity `g` for this tenant's schedulers.
        capacity: usize,
        /// Online policy name (`first-fit` when omitted).
        policy: Option<String>,
    },
    /// Place one job on the tenant's live schedule.
    Arrive {
        /// The tenant.
        tenant: String,
        /// The job's stable id (shared with its later departure).
        id: u64,
        /// The job's `[start, end)` window in ticks.
        job: (i64, i64),
    },
    /// Remove a live job from the tenant's schedule (its machine slot reopens).
    Depart {
        /// The tenant.
        tenant: String,
        /// The id the job arrived under.
        id: u64,
    },
    /// Read the tenant's current state as a [`SimulationReport`].
    Query {
        /// The tenant.
        tenant: String,
    },
    /// Serialize the tenant's live schedule into an [`OnlineSnapshot`].
    Snapshot {
        /// The tenant.
        tenant: String,
    },
    /// Rebuild a tenant from a snapshot (replacing any existing state).
    Restore {
        /// The tenant.
        tenant: String,
        /// The snapshot to rebuild from.
        snapshot: OnlineSnapshot,
    },
    /// Drop a tenant and all its state.
    Close {
        /// The tenant.
        tenant: String,
    },
    /// Force a snapshot + log compaction for the tenant now (durable servers
    /// only).  Responds with the post-compaction [`Response::Wal`] counters.
    Persist {
        /// The tenant.
        tenant: String,
    },
    /// Read the tenant's write-ahead-log counters (durable servers only).
    WalStats {
        /// The tenant.
        tenant: String,
    },
    /// Solve a batch of offline instances through `Solver::solve_batch` on the
    /// work-stealing pool (MaxThroughput under `budget` when given, MinBusy
    /// otherwise).  Not tenant-scoped: batches run beside the shards.
    Batch {
        /// The instances to solve, in order.
        instances: Vec<BatchInstance>,
        /// Busy-time budget; `null`/absent solves MinBusy.
        budget: Option<i64>,
    },
    /// Server-wide counters (shards, tenants, requests served).
    Stats,
}

impl Request {
    /// The request driving one online [`Event`] against `tenant` — the single point
    /// where an event stream becomes wire requests (the trace-driving client, the
    /// benchmarks and the fuzz tests all convert through here).
    pub fn from_event(tenant: &str, event: &Event) -> Self {
        match *event {
            Event::Arrival { id, interval } => Request::Arrive {
                tenant: tenant.to_string(),
                id,
                job: (interval.start().ticks(), interval.end().ticks()),
            },
            Event::Departure { id } => Request::Depart {
                tenant: tenant.to_string(),
                id,
            },
        }
    }

    /// The wire JSON of [`Request::from_event`], formatted directly.
    ///
    /// This is the write-ahead log's record format, serialized on every applied
    /// mutation on a shard's hot path — formatting the two event shapes by hand
    /// skips the generic value-tree serializer (about 5x less time per record).
    /// A unit test pins it byte-for-byte to `from_event(...).to_json()`.
    pub fn event_record_json(tenant: &str, event: &Event) -> String {
        let name = serde_json::to_string(tenant).expect("strings always serialize");
        // Ids travel as `i64` on the wire (the value tree's integer type); the
        // cast round-trips every `u64` bit pattern and matches the generic
        // serializer bit for bit.
        match *event {
            Event::Arrival { id, interval } => format!(
                "{{\"op\": \"arrive\",\"tenant\": {name},\"id\": {},\"job\": [{},{}]}}",
                id as i64,
                interval.start().ticks(),
                interval.end().ticks()
            ),
            Event::Departure { id } => {
                format!(
                    "{{\"op\": \"depart\",\"tenant\": {name},\"id\": {}}}",
                    id as i64
                )
            }
        }
    }

    /// The request's `"op"` discriminant.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Arrive { .. } => "arrive",
            Request::Depart { .. } => "depart",
            Request::Query { .. } => "query",
            Request::Snapshot { .. } => "snapshot",
            Request::Restore { .. } => "restore",
            Request::Close { .. } => "close",
            Request::Persist { .. } => "persist",
            Request::WalStats { .. } => "wal_stats",
            Request::Batch { .. } => "batch",
            Request::Stats => "stats",
        }
    }

    /// The tenant the request is scoped to, when it is tenant-scoped.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Open { tenant, .. }
            | Request::Arrive { tenant, .. }
            | Request::Depart { tenant, .. }
            | Request::Query { tenant }
            | Request::Snapshot { tenant }
            | Request::Restore { tenant, .. }
            | Request::Close { tenant }
            | Request::Persist { tenant }
            | Request::WalStats { tenant } => Some(tenant),
            Request::Batch { .. } | Request::Stats => None,
        }
    }

    /// Parse one line of the wire format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid request: {e}"))
    }

    /// Serialize to one compact line of the wire format (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("requests always serialize")
    }
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        let mut fields = vec![("op", Value::Str(self.op().into()))];
        match self {
            Request::Open {
                tenant,
                capacity,
                policy,
            } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("capacity", capacity.serialize()));
                if let Some(policy) = policy {
                    fields.push(("policy", policy.serialize()));
                }
            }
            Request::Arrive { tenant, id, job } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("id", id.serialize()));
                fields.push(("job", job.serialize()));
            }
            Request::Depart { tenant, id } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("id", id.serialize()));
            }
            Request::Query { tenant }
            | Request::Snapshot { tenant }
            | Request::Close { tenant }
            | Request::Persist { tenant }
            | Request::WalStats { tenant } => {
                fields.push(("tenant", tenant.serialize()));
            }
            Request::Restore { tenant, snapshot } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("snapshot", snapshot.serialize()));
            }
            Request::Batch { instances, budget } => {
                fields.push(("instances", instances.serialize()));
                if let Some(budget) = budget {
                    fields.push(("budget", budget.serialize()));
                }
            }
            Request::Stats => {}
        }
        obj(fields)
    }
}

impl Deserialize for Request {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let op = String::deserialize(value.field("op")?)?;
        let tenant = || -> Result<String, Error> { String::deserialize(value.field("tenant")?) };
        match op.as_str() {
            "open" => Ok(Request::Open {
                tenant: tenant()?,
                capacity: usize::deserialize(value.field("capacity")?)?,
                policy: optional(value, "policy")?,
            }),
            "arrive" => Ok(Request::Arrive {
                tenant: tenant()?,
                id: u64::deserialize(value.field("id")?)?,
                job: <(i64, i64)>::deserialize(value.field("job")?)?,
            }),
            "depart" => Ok(Request::Depart {
                tenant: tenant()?,
                id: u64::deserialize(value.field("id")?)?,
            }),
            "query" => Ok(Request::Query { tenant: tenant()? }),
            "snapshot" => Ok(Request::Snapshot { tenant: tenant()? }),
            "restore" => Ok(Request::Restore {
                tenant: tenant()?,
                snapshot: OnlineSnapshot::deserialize(value.field("snapshot")?)?,
            }),
            "close" => Ok(Request::Close { tenant: tenant()? }),
            "persist" => Ok(Request::Persist { tenant: tenant()? }),
            "wal_stats" => Ok(Request::WalStats { tenant: tenant()? }),
            "batch" => Ok(Request::Batch {
                instances: Vec::<BatchInstance>::deserialize(value.field("instances")?)?,
                budget: optional(value, "budget")?,
            }),
            "stats" => Ok(Request::Stats),
            other => Err(Error::custom(format!(
                "unknown op '{other}' (expected open, arrive, depart, query, snapshot, \
                 restore, close, persist, wal_stats, batch or stats)"
            ))),
        }
    }
}

/// The outcome of one instance of a `batch` request: the solved schedule, or the
/// per-instance failure (a malformed instance, or a policy refusing to solve it).
#[derive(Debug, Clone)]
pub enum BatchOutcome {
    /// The instance solved; the report uses the shared schema.
    Solved(ScheduleReport),
    /// The instance failed; the sibling instances still solve.
    Failed(String),
}

impl Serialize for BatchOutcome {
    fn serialize(&self) -> Value {
        match self {
            BatchOutcome::Solved(report) => obj(vec![("schedule", report.serialize())]),
            BatchOutcome::Failed(error) => obj(vec![("error", error.serialize())]),
        }
    }
}

impl Deserialize for BatchOutcome {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if let Some(report) = value.get("schedule") {
            Ok(BatchOutcome::Solved(ScheduleReport::deserialize(report)?))
        } else if let Some(error) = value.get("error") {
            Ok(BatchOutcome::Failed(String::deserialize(error)?))
        } else {
            Err(Error::custom(
                "a batch outcome carries either `schedule` or `error`",
            ))
        }
    }
}

/// A response from the scheduling daemon.  Every variant serializes with an `"ok"`
/// key; [`Response::Error`] is the only `"ok": false` shape.
#[derive(Debug, Clone)]
pub enum Response {
    /// The operation succeeded and has no payload (`open`, `restore`, `close`).
    Ok,
    /// An `arrive` or `depart` was applied: where, and what it did to the cost.
    Event {
        /// The global machine id the event touched.
        machine: usize,
        /// The signed busy-time change in ticks.
        cost_delta: i64,
        /// The tenant's total busy time after the event.
        cost: i64,
    },
    /// A `query` result: the tenant's state in the shared report schema.
    Query(SimulationReport),
    /// A `snapshot` result: the serialized live schedule.
    Snapshot(OnlineSnapshot),
    /// A `batch` result: one outcome per instance, in request order.
    Batch(Vec<BatchOutcome>),
    /// A `persist` or `wal_stats` result: the tenant's on-disk write-ahead
    /// counters.
    Wal(WalStats),
    /// A `stats` result: server-wide counters.
    Stats {
        /// Number of worker shards.
        shards: usize,
        /// Live tenants across all shards.
        tenants: usize,
        /// Requests served since startup (all operations, all connections).
        requests: u64,
    },
    /// The operation failed; the connection stays usable.
    Error(String),
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error(message.into())
    }

    /// `true` unless this is an [`Response::Error`].
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error(_))
    }

    /// Parse one line of the wire format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid response: {e}"))
    }

    /// Serialize to one compact line of the wire format (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("responses always serialize")
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Ok => obj(vec![("ok", Value::Bool(true))]),
            Response::Event {
                machine,
                cost_delta,
                cost,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("machine", machine.serialize()),
                ("cost_delta", cost_delta.serialize()),
                ("cost", cost.serialize()),
            ]),
            Response::Query(report) => obj(vec![
                ("ok", Value::Bool(true)),
                ("tenant", report.serialize()),
            ]),
            Response::Snapshot(snapshot) => obj(vec![
                ("ok", Value::Bool(true)),
                ("snapshot", snapshot.serialize()),
            ]),
            Response::Batch(outcomes) => obj(vec![
                ("ok", Value::Bool(true)),
                ("results", outcomes.serialize()),
            ]),
            Response::Wal(stats) => obj(vec![
                ("ok", Value::Bool(true)),
                (
                    "wal",
                    obj(vec![
                        ("generation", stats.generation.serialize()),
                        ("log_events", stats.log_records.serialize()),
                        ("log_bytes", stats.log_bytes.serialize()),
                        ("snapshot_bytes", stats.snapshot_bytes.serialize()),
                    ]),
                ),
            ]),
            Response::Stats {
                shards,
                tenants,
                requests,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("shards", shards.serialize()),
                ("tenants", tenants.serialize()),
                ("requests", requests.serialize()),
            ]),
            Response::Error(error) => obj(vec![
                ("ok", Value::Bool(false)),
                ("error", error.serialize()),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let ok = bool::deserialize(value.field("ok")?)?;
        if !ok {
            return Ok(Response::Error(String::deserialize(value.field("error")?)?));
        }
        if let Some(machine) = value.get("machine") {
            return Ok(Response::Event {
                machine: usize::deserialize(machine)?,
                cost_delta: i64::deserialize(value.field("cost_delta")?)?,
                cost: i64::deserialize(value.field("cost")?)?,
            });
        }
        if let Some(report) = value.get("tenant") {
            return Ok(Response::Query(SimulationReport::deserialize(report)?));
        }
        if let Some(snapshot) = value.get("snapshot") {
            return Ok(Response::Snapshot(OnlineSnapshot::deserialize(snapshot)?));
        }
        if let Some(results) = value.get("results") {
            return Ok(Response::Batch(Vec::<BatchOutcome>::deserialize(results)?));
        }
        if let Some(wal) = value.get("wal") {
            return Ok(Response::Wal(WalStats {
                generation: u64::deserialize(wal.field("generation")?)?,
                log_records: u64::deserialize(wal.field("log_events")?)?,
                log_bytes: u64::deserialize(wal.field("log_bytes")?)?,
                snapshot_bytes: u64::deserialize(wal.field("snapshot_bytes")?)?,
            }));
        }
        if let Some(shards) = value.get("shards") {
            return Ok(Response::Stats {
                shards: usize::deserialize(shards)?,
                tenants: usize::deserialize(value.field("tenants")?)?,
                requests: u64::deserialize(value.field("requests")?)?,
            });
        }
        Ok(Response::Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: Request) {
        let line = request.to_json();
        assert!(!line.contains('\n'), "wire lines must be single lines");
        let parsed = Request::from_json(&line).unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn the_fast_event_record_matches_the_generic_serializer() {
        use busytime::online::Event;
        use busytime::{Interval, Time};
        let window =
            |s: i64, e: i64| Interval::try_new(Time::new(s), Time::new(e)).expect("non-empty");
        // Exotic tenant names exercise the string escaping; negative ticks the
        // number formatting.
        for tenant in ["acme", "", "a \"quoted\"\\name", "tab\there", "ünïcode"] {
            for event in [
                Event::arrival(0, window(0, 10)),
                Event::arrival(u64::MAX, window(-55, 7)),
                Event::departure(17),
            ] {
                assert_eq!(
                    Request::event_record_json(tenant, &event),
                    Request::from_event(tenant, &event).to_json(),
                    "the hot-path record format drifted from the wire serializer"
                );
            }
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Open {
            tenant: "acme".into(),
            capacity: 4,
            policy: Some("best-fit".into()),
        });
        round_trip(Request::Open {
            tenant: "acme".into(),
            capacity: 4,
            policy: None,
        });
        round_trip(Request::Arrive {
            tenant: "acme".into(),
            id: 17,
            job: (0, 10),
        });
        round_trip(Request::Depart {
            tenant: "acme".into(),
            id: 17,
        });
        round_trip(Request::Query {
            tenant: "acme".into(),
        });
        round_trip(Request::Snapshot {
            tenant: "acme".into(),
        });
        round_trip(Request::Close {
            tenant: "acme".into(),
        });
        round_trip(Request::Persist {
            tenant: "acme".into(),
        });
        round_trip(Request::WalStats {
            tenant: "acme".into(),
        });
        round_trip(Request::Batch {
            instances: vec![BatchInstance {
                capacity: 2,
                jobs: vec![(0, 10), (2, 12)],
            }],
            budget: Some(12),
        });
        round_trip(Request::Stats);
    }

    #[test]
    fn missing_optional_keys_are_accepted() {
        let r = Request::from_json(r#"{"op":"open","tenant":"t","capacity":2}"#).unwrap();
        assert_eq!(
            r,
            Request::Open {
                tenant: "t".into(),
                capacity: 2,
                policy: None
            }
        );
        let r = Request::from_json(r#"{"op":"batch","instances":[]}"#).unwrap();
        assert_eq!(
            r,
            Request::Batch {
                instances: vec![],
                budget: None
            }
        );
        // Explicit null means the same thing as absent.
        let r = Request::from_json(r#"{"op":"batch","instances":[],"budget":null}"#).unwrap();
        assert!(matches!(r, Request::Batch { budget: None, .. }));
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        let err = Request::from_json(r#"{"op":"fly"}"#).unwrap_err();
        assert!(err.contains("unknown op 'fly'"), "{err}");
        let err = Request::from_json(r#"{"tenant":"t"}"#).unwrap_err();
        assert!(err.contains("op"), "{err}");
        let err = Request::from_json("not json").unwrap_err();
        assert!(err.contains("invalid request"), "{err}");
        let err = Request::from_json(r#"{"op":"arrive","tenant":"t","id":1}"#).unwrap_err();
        assert!(err.contains("job"), "{err}");
    }

    #[test]
    fn responses_round_trip_by_shape() {
        let cases = vec![
            Response::Ok,
            Response::Event {
                machine: 3,
                cost_delta: -7,
                cost: 40,
            },
            Response::Stats {
                shards: 4,
                tenants: 10,
                requests: 1234,
            },
            Response::Wal(WalStats {
                generation: 2,
                log_records: 48,
                log_bytes: 3120,
                snapshot_bytes: 911,
            }),
            Response::error("unknown tenant 'x'"),
        ];
        for response in cases {
            let line = response.to_json();
            let parsed = Response::from_json(&line).unwrap();
            assert_eq!(parsed.to_json(), line);
            assert_eq!(parsed.is_ok(), response.is_ok());
        }
    }

    #[test]
    fn request_metadata_accessors() {
        assert_eq!(Request::Stats.op(), "stats");
        assert_eq!(Request::Stats.tenant(), None);
        let r = Request::Query { tenant: "t".into() };
        assert_eq!(r.op(), "query");
        assert_eq!(r.tenant(), Some("t"));
    }
}
