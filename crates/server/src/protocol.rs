//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every protocol message is one JSON object on one line.  Requests carry an `"op"`
//! discriminant naming the operation and, for tenant-scoped operations, a `"tenant"`
//! key; responses always carry `"ok"` (`true`/`false`) plus the operation's payload, so
//! a client can route on two fixed keys without knowing the full schema.  The complete
//! schema — every operation with a worked request/response example — is documented in
//! `PROTOCOL.md` at the repository root, and the `protocol_doc` test round-trips every
//! example from that document through the types here, so the document cannot drift from
//! the implementation.
//!
//! The serde impls are written by hand against the vendored `serde::Value` tree (the
//! derive stub does not cover enums), which also buys the protocol two properties the
//! derive would not give: *missing* optional keys are accepted (not just `null`), and
//! unknown `"op"` names produce a descriptive error naming the valid operations.

use busytime::online::{Event, OnlineSnapshot};
use busytime::report::{ScheduleReport, SimulationReport};
use busytime_durability::WalStats;
use serde::{Deserialize, Error, Serialize, Value};

/// A stable machine-readable classification for error responses.
///
/// Clients branch on codes, never on message strings: the code decides whether a
/// request is retryable (`Overloaded`, `Unavailable`), a caller bug (`Malformed`,
/// `UnknownTenant`, `AlreadyOpen`, `Rejected`, `Unsupported`) or a server fault
/// (`Internal`).  Codes travel as snake_case strings in the JSON framing and as a
/// single byte in the binary framing; both mappings are pinned by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The server shed the request under load; retry after the hinted delay.
    Overloaded,
    /// The owning shard is temporarily gone (being respawned); retry is safe
    /// only for requests that provably did not reach the shard.
    Unavailable,
    /// The named tenant does not exist on this server.
    UnknownTenant,
    /// An `open` named a tenant that already exists.
    AlreadyOpen,
    /// The request could not be parsed or referenced an unbound binary id.
    Malformed,
    /// The request parsed but the operation refused it (bad policy name,
    /// out-of-range window, duplicate arrival, unknown job id, …).
    Rejected,
    /// The operation needs a feature this server was not started with
    /// (e.g. `persist` without `--data-dir`).
    Unsupported,
    /// The server failed while applying the request.
    Internal,
}

impl ErrorCode {
    /// Every code, for exhaustive tests and documentation checks.
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::Overloaded,
        ErrorCode::Unavailable,
        ErrorCode::UnknownTenant,
        ErrorCode::AlreadyOpen,
        ErrorCode::Malformed,
        ErrorCode::Rejected,
        ErrorCode::Unsupported,
        ErrorCode::Internal,
    ];

    /// The wire string for the JSON framing (`"code"` key).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::UnknownTenant => "unknown_tenant",
            ErrorCode::AlreadyOpen => "already_open",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Rejected => "rejected",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire string; unknown strings map to [`ErrorCode::Internal`] so
    /// old clients keep working against servers that grow new codes.
    pub fn parse(text: &str) -> Self {
        match text {
            "overloaded" => ErrorCode::Overloaded,
            "unavailable" => ErrorCode::Unavailable,
            "unknown_tenant" => ErrorCode::UnknownTenant,
            "already_open" => ErrorCode::AlreadyOpen,
            "malformed" => ErrorCode::Malformed,
            "rejected" => ErrorCode::Rejected,
            "unsupported" => ErrorCode::Unsupported,
            _ => ErrorCode::Internal,
        }
    }

    /// The single-byte encoding used by the binary error frame.
    pub fn as_byte(self) -> u8 {
        match self {
            ErrorCode::Internal => 0,
            ErrorCode::Overloaded => 1,
            ErrorCode::Unavailable => 2,
            ErrorCode::UnknownTenant => 3,
            ErrorCode::AlreadyOpen => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::Rejected => 6,
            ErrorCode::Unsupported => 7,
        }
    }

    /// Decode the binary error-frame byte; unknown bytes map to
    /// [`ErrorCode::Internal`] (same forward-compatibility rule as [`Self::parse`]).
    pub fn from_byte(byte: u8) -> Self {
        match byte {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Unavailable,
            3 => ErrorCode::UnknownTenant,
            4 => ErrorCode::AlreadyOpen,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::Rejected,
            7 => ErrorCode::Unsupported,
            _ => ErrorCode::Internal,
        }
    }

    /// `true` for codes where retrying the same request can succeed.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::Unavailable)
    }
}

/// A structured wire error: a stable [`ErrorCode`], a human-readable message, and
/// (for [`ErrorCode::Overloaded`]) a retry-after hint in milliseconds.
///
/// `Display` prints the message alone, so diagnostics that format an error keep
/// reading naturally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The machine-readable classification.
    pub code: ErrorCode,
    /// The human-readable explanation.
    pub message: String,
    /// For shed requests: how long the client should wait before retrying.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Build an error with the given code and no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-shard figures inside a [`Response::Health`] report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardHealth {
    /// The shard's index.
    pub shard: usize,
    /// Requests currently queued or being applied on the shard.
    pub queue_depth: usize,
    /// Requests shed by admission control or queue timeouts since startup.
    pub shed: u64,
    /// Times the shard worker died and was respawned in-process.
    pub respawns: u64,
    /// Live tenants owned by the shard.
    pub tenants: usize,
    /// Journal records appended but not yet fsynced, summed over the shard's
    /// tenants (zero on non-durable servers).
    pub wal_backlog: u64,
}

/// Per-tenant degradation figures inside a [`Response::Health`] report.  Only
/// tenants that have been shed at least once appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantHealth {
    /// The tenant's name.
    pub tenant: String,
    /// Requests shed for this tenant since startup.
    pub shed: u64,
    /// The tenant's requests currently in flight.
    pub inflight: usize,
}

/// A `health` result: per-shard load figures plus tenants degraded by shedding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Tenants that have had requests shed, sorted by name.
    pub degraded: Vec<TenantHealth>,
}

impl Serialize for ShardHealth {
    fn serialize(&self) -> Value {
        obj(vec![
            ("shard", self.shard.serialize()),
            ("queue_depth", self.queue_depth.serialize()),
            ("shed", self.shed.serialize()),
            ("respawns", self.respawns.serialize()),
            ("tenants", self.tenants.serialize()),
            ("wal_backlog", self.wal_backlog.serialize()),
        ])
    }
}

impl Deserialize for ShardHealth {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ShardHealth {
            shard: usize::deserialize(value.field("shard")?)?,
            queue_depth: usize::deserialize(value.field("queue_depth")?)?,
            shed: u64::deserialize(value.field("shed")?)?,
            respawns: u64::deserialize(value.field("respawns")?)?,
            tenants: usize::deserialize(value.field("tenants")?)?,
            wal_backlog: u64::deserialize(value.field("wal_backlog")?)?,
        })
    }
}

impl Serialize for TenantHealth {
    fn serialize(&self) -> Value {
        obj(vec![
            ("tenant", self.tenant.serialize()),
            ("shed", self.shed.serialize()),
            ("inflight", self.inflight.serialize()),
        ])
    }
}

impl Deserialize for TenantHealth {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(TenantHealth {
            tenant: String::deserialize(value.field("tenant")?)?,
            shed: u64::deserialize(value.field("shed")?)?,
            inflight: usize::deserialize(value.field("inflight")?)?,
        })
    }
}

impl Serialize for HealthReport {
    fn serialize(&self) -> Value {
        obj(vec![
            ("shards", self.shards.serialize()),
            ("degraded", self.degraded.serialize()),
        ])
    }
}

impl Deserialize for HealthReport {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(HealthReport {
            shards: Vec::<ShardHealth>::deserialize(value.field("shards")?)?,
            degraded: Vec::<TenantHealth>::deserialize(value.field("degraded")?)?,
        })
    }
}

/// Build a JSON object from `(key, value)` pairs.
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Read an optional key: absent and `null` both mean `None`.
fn optional<T: Deserialize>(value: &Value, key: &str) -> Result<Option<T>, Error> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => T::deserialize(v).map(Some),
    }
}

/// One instance inside a `batch` request: the same shape as the CLI's instance files
/// (`{"capacity": g, "jobs": [[start, end], …]}`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchInstance {
    /// The parallelism parameter `g`.
    pub capacity: usize,
    /// Jobs as `[start, end)` tick pairs.
    pub jobs: Vec<(i64, i64)>,
}

/// A request to the scheduling daemon.
///
/// Tenant-scoped operations (everything except [`Request::Batch`] and
/// [`Request::Stats`]) are routed to the shard owning the tenant and applied to its
/// live [`busytime::OnlineScheduler`] single-threaded, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a tenant: an empty live schedule with the given capacity and policy.
    Open {
        /// The tenant's name (the sharding key).
        tenant: String,
        /// The machine capacity `g` for this tenant's schedulers.
        capacity: usize,
        /// Online policy name (`first-fit` when omitted).
        policy: Option<String>,
    },
    /// Place one job on the tenant's live schedule.
    Arrive {
        /// The tenant.
        tenant: String,
        /// The job's stable id (shared with its later departure).
        id: u64,
        /// The job's `[start, end)` window in ticks.
        job: (i64, i64),
    },
    /// Remove a live job from the tenant's schedule (its machine slot reopens).
    Depart {
        /// The tenant.
        tenant: String,
        /// The id the job arrived under.
        id: u64,
    },
    /// Read the tenant's current state as a [`SimulationReport`].
    Query {
        /// The tenant.
        tenant: String,
    },
    /// Serialize the tenant's live schedule into an [`OnlineSnapshot`].
    Snapshot {
        /// The tenant.
        tenant: String,
    },
    /// Rebuild a tenant from a snapshot (replacing any existing state).
    Restore {
        /// The tenant.
        tenant: String,
        /// The snapshot to rebuild from.
        snapshot: OnlineSnapshot,
    },
    /// Drop a tenant and all its state.
    Close {
        /// The tenant.
        tenant: String,
    },
    /// Force a snapshot + log compaction for the tenant now (durable servers
    /// only).  Responds with the post-compaction [`Response::Wal`] counters.
    Persist {
        /// The tenant.
        tenant: String,
    },
    /// Read the tenant's write-ahead-log counters (durable servers only).
    WalStats {
        /// The tenant.
        tenant: String,
    },
    /// Run one budgeted background-defragmentation pass on the tenant's live
    /// schedule: migrate up to `budget` jobs to strictly cheaper machines (see
    /// [`busytime::online::OnlineScheduler::compact`]).  Journaled like any other
    /// mutation on durable servers, so recovery replays it deterministically.
    Compact {
        /// The tenant.
        tenant: String,
        /// Maximum number of migrations to commit in this pass.
        budget: usize,
    },
    /// Solve a batch of offline instances through `Solver::solve_batch` on the
    /// work-stealing pool (MaxThroughput under `budget` when given, MinBusy
    /// otherwise).  Not tenant-scoped: batches run beside the shards.
    Batch {
        /// The instances to solve, in order.
        instances: Vec<BatchInstance>,
        /// Busy-time budget; `null`/absent solves MinBusy.
        budget: Option<i64>,
    },
    /// Server-wide counters (shards, tenants, requests served).
    Stats,
    /// Per-shard load and degradation figures (queue depth, shed counts, WAL
    /// backlog, respawns, degraded tenants).  Not tenant-scoped.
    Health,
}

impl Request {
    /// The request driving one online [`Event`] against `tenant` — the single point
    /// where an event stream becomes wire requests (the trace-driving client, the
    /// benchmarks and the fuzz tests all convert through here).
    pub fn from_event(tenant: &str, event: &Event) -> Self {
        match *event {
            Event::Arrival { id, interval } => Request::Arrive {
                tenant: tenant.to_string(),
                id,
                job: (interval.start().ticks(), interval.end().ticks()),
            },
            Event::Departure { id } => Request::Depart {
                tenant: tenant.to_string(),
                id,
            },
        }
    }

    /// The wire JSON of [`Request::from_event`], formatted directly.
    ///
    /// This is the write-ahead log's record format, serialized on every applied
    /// mutation on a shard's hot path — formatting the two event shapes by hand
    /// skips the generic value-tree serializer (about 5x less time per record).
    /// A unit test pins it byte-for-byte to `from_event(...).to_json()`.
    pub fn event_record_json(tenant: &str, event: &Event) -> String {
        let name = serde_json::to_string(tenant).expect("strings always serialize");
        // Ids travel as `i64` on the wire (the value tree's integer type); the
        // cast round-trips every `u64` bit pattern and matches the generic
        // serializer bit for bit.
        match *event {
            Event::Arrival { id, interval } => format!(
                "{{\"op\": \"arrive\",\"tenant\": {name},\"id\": {},\"job\": [{},{}]}}",
                id as i64,
                interval.start().ticks(),
                interval.end().ticks()
            ),
            Event::Departure { id } => {
                format!(
                    "{{\"op\": \"depart\",\"tenant\": {name},\"id\": {}}}",
                    id as i64
                )
            }
        }
    }

    /// The request's `"op"` discriminant.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Arrive { .. } => "arrive",
            Request::Depart { .. } => "depart",
            Request::Query { .. } => "query",
            Request::Snapshot { .. } => "snapshot",
            Request::Restore { .. } => "restore",
            Request::Close { .. } => "close",
            Request::Persist { .. } => "persist",
            Request::WalStats { .. } => "wal_stats",
            Request::Compact { .. } => "compact",
            Request::Batch { .. } => "batch",
            Request::Stats => "stats",
            Request::Health => "health",
        }
    }

    /// The tenant the request is scoped to, when it is tenant-scoped.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Open { tenant, .. }
            | Request::Arrive { tenant, .. }
            | Request::Depart { tenant, .. }
            | Request::Query { tenant }
            | Request::Snapshot { tenant }
            | Request::Restore { tenant, .. }
            | Request::Close { tenant }
            | Request::Persist { tenant }
            | Request::WalStats { tenant }
            | Request::Compact { tenant, .. } => Some(tenant),
            Request::Batch { .. } | Request::Stats | Request::Health => None,
        }
    }

    /// Parse one line of the wire format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid request: {e}"))
    }

    /// Serialize to one compact line of the wire format (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("requests always serialize")
    }
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        let mut fields = vec![("op", Value::Str(self.op().into()))];
        match self {
            Request::Open {
                tenant,
                capacity,
                policy,
            } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("capacity", capacity.serialize()));
                if let Some(policy) = policy {
                    fields.push(("policy", policy.serialize()));
                }
            }
            Request::Arrive { tenant, id, job } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("id", id.serialize()));
                fields.push(("job", job.serialize()));
            }
            Request::Depart { tenant, id } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("id", id.serialize()));
            }
            Request::Query { tenant }
            | Request::Snapshot { tenant }
            | Request::Close { tenant }
            | Request::Persist { tenant }
            | Request::WalStats { tenant } => {
                fields.push(("tenant", tenant.serialize()));
            }
            Request::Restore { tenant, snapshot } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("snapshot", snapshot.serialize()));
            }
            Request::Compact { tenant, budget } => {
                fields.push(("tenant", tenant.serialize()));
                fields.push(("budget", budget.serialize()));
            }
            Request::Batch { instances, budget } => {
                fields.push(("instances", instances.serialize()));
                if let Some(budget) = budget {
                    fields.push(("budget", budget.serialize()));
                }
            }
            Request::Stats | Request::Health => {}
        }
        obj(fields)
    }
}

impl Deserialize for Request {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let op = String::deserialize(value.field("op")?)?;
        let tenant = || -> Result<String, Error> { String::deserialize(value.field("tenant")?) };
        match op.as_str() {
            "open" => Ok(Request::Open {
                tenant: tenant()?,
                capacity: usize::deserialize(value.field("capacity")?)?,
                policy: optional(value, "policy")?,
            }),
            "arrive" => Ok(Request::Arrive {
                tenant: tenant()?,
                id: u64::deserialize(value.field("id")?)?,
                job: <(i64, i64)>::deserialize(value.field("job")?)?,
            }),
            "depart" => Ok(Request::Depart {
                tenant: tenant()?,
                id: u64::deserialize(value.field("id")?)?,
            }),
            "query" => Ok(Request::Query { tenant: tenant()? }),
            "snapshot" => Ok(Request::Snapshot { tenant: tenant()? }),
            "restore" => Ok(Request::Restore {
                tenant: tenant()?,
                snapshot: OnlineSnapshot::deserialize(value.field("snapshot")?)?,
            }),
            "close" => Ok(Request::Close { tenant: tenant()? }),
            "persist" => Ok(Request::Persist { tenant: tenant()? }),
            "wal_stats" => Ok(Request::WalStats { tenant: tenant()? }),
            "compact" => Ok(Request::Compact {
                tenant: tenant()?,
                budget: usize::deserialize(value.field("budget")?)?,
            }),
            "batch" => Ok(Request::Batch {
                instances: Vec::<BatchInstance>::deserialize(value.field("instances")?)?,
                budget: optional(value, "budget")?,
            }),
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            other => Err(Error::custom(format!(
                "unknown op '{other}' (expected open, arrive, depart, query, snapshot, \
                 restore, close, persist, wal_stats, compact, batch, stats or health)"
            ))),
        }
    }
}

/// The outcome of one instance of a `batch` request: the solved schedule, or the
/// per-instance failure (a malformed instance, or a policy refusing to solve it).
#[derive(Debug, Clone)]
pub enum BatchOutcome {
    /// The instance solved; the report uses the shared schema.
    Solved(ScheduleReport),
    /// The instance failed; the sibling instances still solve.
    Failed(String),
}

impl Serialize for BatchOutcome {
    fn serialize(&self) -> Value {
        match self {
            BatchOutcome::Solved(report) => obj(vec![("schedule", report.serialize())]),
            BatchOutcome::Failed(error) => obj(vec![("error", error.serialize())]),
        }
    }
}

impl Deserialize for BatchOutcome {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if let Some(report) = value.get("schedule") {
            Ok(BatchOutcome::Solved(ScheduleReport::deserialize(report)?))
        } else if let Some(error) = value.get("error") {
            Ok(BatchOutcome::Failed(String::deserialize(error)?))
        } else {
            Err(Error::custom(
                "a batch outcome carries either `schedule` or `error`",
            ))
        }
    }
}

/// A response from the scheduling daemon.  Every variant serializes with an `"ok"`
/// key; [`Response::Error`] is the only `"ok": false` shape.
#[derive(Debug, Clone)]
pub enum Response {
    /// The operation succeeded and has no payload (`open`, `restore`, `close`).
    Ok,
    /// An `arrive` or `depart` was applied: where, and what it did to the cost.
    Event {
        /// The global machine id the event touched.
        machine: usize,
        /// The signed busy-time change in ticks.
        cost_delta: i64,
        /// The tenant's total busy time after the event.
        cost: i64,
    },
    /// A `query` result: the tenant's state in the shared report schema.
    Query(SimulationReport),
    /// A `snapshot` result: the serialized live schedule.
    Snapshot(OnlineSnapshot),
    /// A `batch` result: one outcome per instance, in request order.
    Batch(Vec<BatchOutcome>),
    /// A `compact` result: what the defragmentation pass did.
    Compact {
        /// Strictly-improving migrations committed (at most the budget).
        moves: usize,
        /// The signed busy-time change in ticks (never positive).
        cost_delta: i64,
        /// The tenant's total busy time after the pass.
        cost: i64,
    },
    /// A `persist` or `wal_stats` result: the tenant's on-disk write-ahead
    /// counters.
    Wal(WalStats),
    /// A `stats` result: server-wide counters.
    Stats {
        /// Number of worker shards.
        shards: usize,
        /// Live tenants across all shards.
        tenants: usize,
        /// Requests served since startup (all operations, all connections).
        requests: u64,
    },
    /// A `health` result: per-shard load figures and degraded tenants.
    Health(HealthReport),
    /// The operation failed; the connection stays usable.
    Error(WireError),
}

impl Response {
    /// Shorthand for an [`ErrorCode::Internal`] error response (the unclassified
    /// default; prefer [`Response::fail`] with a specific code).
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error(WireError::new(ErrorCode::Internal, message))
    }

    /// An error response with an explicit [`ErrorCode`].
    pub fn fail(code: ErrorCode, message: impl Into<String>) -> Self {
        Response::Error(WireError::new(code, message))
    }

    /// An [`ErrorCode::Overloaded`] shed response with a retry-after hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> Self {
        Response::Error(WireError {
            code: ErrorCode::Overloaded,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        })
    }

    /// `true` unless this is an [`Response::Error`].
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error(_))
    }

    /// Parse one line of the wire format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid response: {e}"))
    }

    /// Serialize to one compact line of the wire format (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("responses always serialize")
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Ok => obj(vec![("ok", Value::Bool(true))]),
            Response::Event {
                machine,
                cost_delta,
                cost,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("machine", machine.serialize()),
                ("cost_delta", cost_delta.serialize()),
                ("cost", cost.serialize()),
            ]),
            Response::Query(report) => obj(vec![
                ("ok", Value::Bool(true)),
                ("tenant", report.serialize()),
            ]),
            Response::Snapshot(snapshot) => obj(vec![
                ("ok", Value::Bool(true)),
                ("snapshot", snapshot.serialize()),
            ]),
            Response::Batch(outcomes) => obj(vec![
                ("ok", Value::Bool(true)),
                ("results", outcomes.serialize()),
            ]),
            Response::Compact {
                moves,
                cost_delta,
                cost,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("moves", moves.serialize()),
                ("cost_delta", cost_delta.serialize()),
                ("cost", cost.serialize()),
            ]),
            Response::Wal(stats) => obj(vec![
                ("ok", Value::Bool(true)),
                (
                    "wal",
                    obj(vec![
                        ("generation", stats.generation.serialize()),
                        ("log_events", stats.log_records.serialize()),
                        ("log_bytes", stats.log_bytes.serialize()),
                        ("snapshot_bytes", stats.snapshot_bytes.serialize()),
                    ]),
                ),
            ]),
            Response::Stats {
                shards,
                tenants,
                requests,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("shards", shards.serialize()),
                ("tenants", tenants.serialize()),
                ("requests", requests.serialize()),
            ]),
            Response::Health(health) => obj(vec![
                ("ok", Value::Bool(true)),
                ("health", health.serialize()),
            ]),
            Response::Error(error) => {
                let mut fields = vec![
                    ("ok", Value::Bool(false)),
                    ("code", Value::Str(error.code.as_str().into())),
                    ("error", error.message.serialize()),
                ];
                if let Some(ms) = error.retry_after_ms {
                    fields.push(("retry_after_ms", ms.serialize()));
                }
                obj(fields)
            }
        }
    }
}

impl Deserialize for Response {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let ok = bool::deserialize(value.field("ok")?)?;
        if !ok {
            // Lenient: a missing/unknown `code` decodes as `internal`, so responses
            // from older servers still parse.
            let code = optional::<String>(value, "code")?
                .map_or(ErrorCode::Internal, |c| ErrorCode::parse(&c));
            return Ok(Response::Error(WireError {
                code,
                message: String::deserialize(value.field("error")?)?,
                retry_after_ms: optional(value, "retry_after_ms")?,
            }));
        }
        if let Some(machine) = value.get("machine") {
            return Ok(Response::Event {
                machine: usize::deserialize(machine)?,
                cost_delta: i64::deserialize(value.field("cost_delta")?)?,
                cost: i64::deserialize(value.field("cost")?)?,
            });
        }
        if let Some(moves) = value.get("moves") {
            return Ok(Response::Compact {
                moves: usize::deserialize(moves)?,
                cost_delta: i64::deserialize(value.field("cost_delta")?)?,
                cost: i64::deserialize(value.field("cost")?)?,
            });
        }
        if let Some(report) = value.get("tenant") {
            return Ok(Response::Query(SimulationReport::deserialize(report)?));
        }
        if let Some(snapshot) = value.get("snapshot") {
            return Ok(Response::Snapshot(OnlineSnapshot::deserialize(snapshot)?));
        }
        if let Some(results) = value.get("results") {
            return Ok(Response::Batch(Vec::<BatchOutcome>::deserialize(results)?));
        }
        if let Some(wal) = value.get("wal") {
            return Ok(Response::Wal(WalStats {
                generation: u64::deserialize(wal.field("generation")?)?,
                log_records: u64::deserialize(wal.field("log_events")?)?,
                log_bytes: u64::deserialize(wal.field("log_bytes")?)?,
                snapshot_bytes: u64::deserialize(wal.field("snapshot_bytes")?)?,
            }));
        }
        if let Some(health) = value.get("health") {
            return Ok(Response::Health(HealthReport::deserialize(health)?));
        }
        if let Some(shards) = value.get("shards") {
            return Ok(Response::Stats {
                shards: usize::deserialize(shards)?,
                tenants: usize::deserialize(value.field("tenants")?)?,
                requests: u64::deserialize(value.field("requests")?)?,
            });
        }
        Ok(Response::Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: Request) {
        let line = request.to_json();
        assert!(!line.contains('\n'), "wire lines must be single lines");
        let parsed = Request::from_json(&line).unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn the_fast_event_record_matches_the_generic_serializer() {
        use busytime::online::Event;
        use busytime::{Interval, Time};
        let window =
            |s: i64, e: i64| Interval::try_new(Time::new(s), Time::new(e)).expect("non-empty");
        // Exotic tenant names exercise the string escaping; negative ticks the
        // number formatting.
        for tenant in ["acme", "", "a \"quoted\"\\name", "tab\there", "ünïcode"] {
            for event in [
                Event::arrival(0, window(0, 10)),
                Event::arrival(u64::MAX, window(-55, 7)),
                Event::departure(17),
            ] {
                assert_eq!(
                    Request::event_record_json(tenant, &event),
                    Request::from_event(tenant, &event).to_json(),
                    "the hot-path record format drifted from the wire serializer"
                );
            }
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Open {
            tenant: "acme".into(),
            capacity: 4,
            policy: Some("best-fit".into()),
        });
        round_trip(Request::Open {
            tenant: "acme".into(),
            capacity: 4,
            policy: None,
        });
        round_trip(Request::Arrive {
            tenant: "acme".into(),
            id: 17,
            job: (0, 10),
        });
        round_trip(Request::Depart {
            tenant: "acme".into(),
            id: 17,
        });
        round_trip(Request::Query {
            tenant: "acme".into(),
        });
        round_trip(Request::Snapshot {
            tenant: "acme".into(),
        });
        round_trip(Request::Close {
            tenant: "acme".into(),
        });
        round_trip(Request::Persist {
            tenant: "acme".into(),
        });
        round_trip(Request::WalStats {
            tenant: "acme".into(),
        });
        round_trip(Request::Compact {
            tenant: "acme".into(),
            budget: 64,
        });
        round_trip(Request::Batch {
            instances: vec![BatchInstance {
                capacity: 2,
                jobs: vec![(0, 10), (2, 12)],
            }],
            budget: Some(12),
        });
        round_trip(Request::Stats);
        round_trip(Request::Health);
    }

    #[test]
    fn missing_optional_keys_are_accepted() {
        let r = Request::from_json(r#"{"op":"open","tenant":"t","capacity":2}"#).unwrap();
        assert_eq!(
            r,
            Request::Open {
                tenant: "t".into(),
                capacity: 2,
                policy: None
            }
        );
        let r = Request::from_json(r#"{"op":"batch","instances":[]}"#).unwrap();
        assert_eq!(
            r,
            Request::Batch {
                instances: vec![],
                budget: None
            }
        );
        // Explicit null means the same thing as absent.
        let r = Request::from_json(r#"{"op":"batch","instances":[],"budget":null}"#).unwrap();
        assert!(matches!(r, Request::Batch { budget: None, .. }));
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        let err = Request::from_json(r#"{"op":"fly"}"#).unwrap_err();
        assert!(err.contains("unknown op 'fly'"), "{err}");
        let err = Request::from_json(r#"{"tenant":"t"}"#).unwrap_err();
        assert!(err.contains("op"), "{err}");
        let err = Request::from_json("not json").unwrap_err();
        assert!(err.contains("invalid request"), "{err}");
        let err = Request::from_json(r#"{"op":"arrive","tenant":"t","id":1}"#).unwrap_err();
        assert!(err.contains("job"), "{err}");
    }

    #[test]
    fn responses_round_trip_by_shape() {
        let cases = vec![
            Response::Ok,
            Response::Event {
                machine: 3,
                cost_delta: -7,
                cost: 40,
            },
            Response::Compact {
                moves: 5,
                cost_delta: -230,
                cost: 4180,
            },
            Response::Stats {
                shards: 4,
                tenants: 10,
                requests: 1234,
            },
            Response::Wal(WalStats {
                generation: 2,
                log_records: 48,
                log_bytes: 3120,
                snapshot_bytes: 911,
            }),
            Response::Health(HealthReport {
                shards: vec![ShardHealth {
                    shard: 0,
                    queue_depth: 3,
                    shed: 12,
                    respawns: 1,
                    tenants: 5,
                    wal_backlog: 7,
                }],
                degraded: vec![TenantHealth {
                    tenant: "flood".into(),
                    shed: 12,
                    inflight: 64,
                }],
            }),
            Response::error("unknown tenant 'x'"),
            Response::fail(ErrorCode::UnknownTenant, "unknown tenant 'x'"),
            Response::overloaded("shard 2 queue full", 25),
        ];
        for response in cases {
            let line = response.to_json();
            let parsed = Response::from_json(&line).unwrap();
            assert_eq!(parsed.to_json(), line);
            assert_eq!(parsed.is_ok(), response.is_ok());
        }
    }

    #[test]
    fn error_codes_round_trip_both_encodings() {
        let codes = [
            ErrorCode::Overloaded,
            ErrorCode::Unavailable,
            ErrorCode::UnknownTenant,
            ErrorCode::AlreadyOpen,
            ErrorCode::Malformed,
            ErrorCode::Rejected,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
        ];
        for code in codes {
            assert_eq!(ErrorCode::parse(code.as_str()), code);
            assert_eq!(ErrorCode::from_byte(code.as_byte()), code);
        }
        // Forward compatibility: unknowns decode as `internal`.
        assert_eq!(ErrorCode::parse("quota_exceeded"), ErrorCode::Internal);
        assert_eq!(ErrorCode::from_byte(0xFF), ErrorCode::Internal);
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::Unavailable.is_retryable());
        assert!(!ErrorCode::Rejected.is_retryable());
    }

    #[test]
    fn error_responses_without_a_code_decode_as_internal() {
        // The pre-taxonomy wire shape (PR 5–7 servers) still parses.
        let parsed = Response::from_json(r#"{"ok": false, "error": "boom"}"#).unwrap();
        let Response::Error(error) = parsed else {
            panic!("expected an error response");
        };
        assert_eq!(error.code, ErrorCode::Internal);
        assert_eq!(error.message, "boom");
        assert_eq!(error.retry_after_ms, None);
    }

    #[test]
    fn request_metadata_accessors() {
        assert_eq!(Request::Stats.op(), "stats");
        assert_eq!(Request::Stats.tenant(), None);
        let r = Request::Query { tenant: "t".into() };
        assert_eq!(r.op(), "query");
        assert_eq!(r.tenant(), Some("t"));
    }
}
