//! The compact binary framing: length-prefixed frames negotiated next to NDJSON.
//!
//! Every binary frame opens with the magic byte [`MAGIC`] (`0xB5`), which can never
//! begin an NDJSON message (a JSON request line starts with `{` or whitespace), so
//! the server decides the framing of **each message** by peeking one byte — there is
//! no handshake and a connection may freely mix framings.  A response always travels
//! in the framing of its request.
//!
//! The frame header is six bytes — magic, a one-byte opcode, and a `u32`
//! little-endian sequence number the response echoes — followed by a body whose
//! layout the opcode fixes:
//!
//! * The **fast path** ([`FrameRequest::Arrive`]/[`Depart`](FrameRequest::Depart)/
//!   [`Query`](FrameRequest::Query)) carries a `u32` connection-local tenant id plus
//!   the job id and window ticks as raw little-endian integers — no parsing, no
//!   allocation, 10–34 bytes per request against ~60–90 bytes of JSON.
//! * Tenant ids are established by [`FrameRequest::Bind`]: the server assigns ids
//!   densely in bind order (0, 1, 2, …) per connection, so a client that mirrors
//!   that assignment knows every id without waiting for the
//!   [`FrameResponse::Bound`] acknowledgement.
//! * Rare operations (`open`, `snapshot`, `restore`, `batch`, …) ride in a
//!   [`FrameRequest::Json`] fallback frame: a length-prefixed payload holding the
//!   exact NDJSON request object, answered by a [`FrameResponse::Json`] frame
//!   holding the exact NDJSON response — the two framings cannot drift apart
//!   because the rare path *is* the JSON path.
//!
//! Decoding is a trust boundary: a declared length beyond [`MAX_PAYLOAD`], an
//! unknown opcode, or a stream that ends mid-frame yields a [`DecodeError`] and the
//! connection must drop (after a best-effort error frame), because a malformed
//! frame leaves no way to find the next frame boundary.  Nothing here panics on
//! hostile bytes — the fuzz suite feeds the decoder random, truncated and oversized
//! frames and expects errors, never aborts.

use crate::protocol::ErrorCode;
use std::io::{self, Read, Write};

/// First byte of every binary frame.  `0xB5` is not valid leading UTF-8 and can
/// never open a JSON text, so one peeked byte selects the framing per message.
pub const MAGIC: u8 = 0xB5;

/// Largest accepted length-prefixed payload (JSON fallback bodies), 64 MiB.  A
/// frame declaring more is hostile or corrupt; the decoder refuses it without
/// allocating.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// Largest accepted tenant name in a [`FrameRequest::Bind`] body.
pub const MAX_NAME: usize = 4096;

/// Request opcodes (client → server).
mod op {
    /// JSON fallback request.
    pub const JSON: u8 = 0x00;
    /// Fast-path arrival.
    pub const ARRIVE: u8 = 0x01;
    /// Fast-path departure.
    pub const DEPART: u8 = 0x02;
    /// Fast-path query.
    pub const QUERY: u8 = 0x03;
    /// Bind a tenant name to the next dense connection-local id.
    pub const BIND: u8 = 0x04;
}

/// Response opcodes (server → client).  The high bit distinguishes them from
/// request opcodes so a misdirected frame fails loudly instead of parsing.
mod rop {
    /// JSON fallback response (the full `{"ok": …}` object).
    pub const JSON: u8 = 0x80;
    /// Fast-path event effect (`arrive`/`depart` succeeded).
    pub const EVENT: u8 = 0x81;
    /// The operation failed; body is a code byte, a `u64` retry-after hint in
    /// milliseconds (0 = none) and the UTF-8 error message.
    pub const ERROR: u8 = 0x82;
    /// A bind succeeded; body is the assigned tenant id.
    pub const BOUND: u8 = 0x84;
}

/// The body of one binary request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRequest {
    /// Fast-path `arrive`: place job `id` with window `[start, end)` ticks on the
    /// tenant bound to `tenant`.
    Arrive {
        /// Connection-local tenant id from an earlier bind.
        tenant: u32,
        /// The job's stable id.
        id: u64,
        /// Window start in ticks.
        start: i64,
        /// Window end in ticks.
        end: i64,
    },
    /// Fast-path `depart`: remove job `id` from the tenant bound to `tenant`.
    Depart {
        /// Connection-local tenant id from an earlier bind.
        tenant: u32,
        /// The id the job arrived under.
        id: u64,
    },
    /// Fast-path `query` for the tenant bound to `tenant` (the report itself
    /// returns as a JSON response frame).
    Query {
        /// Connection-local tenant id from an earlier bind.
        tenant: u32,
    },
    /// Bind `name` to the connection's next dense tenant id (idempotent: a name
    /// already bound re-acknowledges its existing id).
    Bind {
        /// The tenant name to bind.
        name: String,
    },
    /// Fallback: the payload is one complete NDJSON request object.
    Json {
        /// The request as wire JSON.
        payload: String,
    },
}

/// One binary request frame: the echoed sequence number plus the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen sequence number, echoed verbatim in the response frame.
    pub seq: u32,
    /// The decoded body.
    pub body: FrameRequest,
}

/// The body of one binary response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameResponse {
    /// An `arrive`/`depart` was applied (the binary shape of `Response::Event`).
    Event {
        /// The global machine id the event touched.
        machine: u64,
        /// The signed busy-time change in ticks.
        cost_delta: i64,
        /// The tenant's total busy time after the event.
        cost: i64,
    },
    /// A bind succeeded; the id the server assigned (dense per connection).
    Bound {
        /// The connection-local tenant id.
        tenant: u32,
    },
    /// The operation failed; the connection stays usable.
    Error {
        /// The machine-readable classification (one byte on the wire; same
        /// taxonomy as the NDJSON `"code"` value).
        code: ErrorCode,
        /// Retry-after hint in milliseconds for shed requests; 0 means none.
        /// `u64` on the wire (8 bytes, little-endian), matching the JSON
        /// protocol's `Option<u64>` exactly — a narrower field silently
        /// truncated hints above `u32::MAX` on the binary path.
        retry_after_ms: u64,
        /// The error message (same text as the NDJSON `"error"` value).
        message: String,
    },
    /// Fallback: the payload is one complete NDJSON response object.
    Json {
        /// The response as wire JSON.
        payload: String,
    },
}

/// One binary response frame: the echoed sequence number plus the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The request's sequence number, echoed.
    pub seq: u32,
    /// The decoded body.
    pub body: FrameResponse,
}

/// Why a binary frame could not be decoded.  Either way the stream has no
/// recoverable frame boundary and the connection must drop.
#[derive(Debug)]
pub enum DecodeError {
    /// The underlying stream failed or ended mid-frame.
    Io(io::Error),
    /// The bytes are not a well-formed frame (bad magic, unknown opcode,
    /// oversized length, non-UTF-8 text).  `seq` is the header's sequence number
    /// when the header itself decoded, so the error frame can still echo it.
    Protocol {
        /// Sequence number to echo in a final error frame (0 when unknown).
        seq: u32,
        /// What was wrong with the frame.
        message: String,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "reading a binary frame: {e}"),
            DecodeError::Protocol { message, .. } => write!(f, "malformed binary frame: {message}"),
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

fn read_exact_array<const N: usize>(reader: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32(reader: &mut impl Read) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_exact_array(reader)?))
}

fn read_u64(reader: &mut impl Read) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_exact_array(reader)?))
}

fn read_i64(reader: &mut impl Read) -> io::Result<i64> {
    Ok(i64::from_le_bytes(read_exact_array(reader)?))
}

/// Read a length-prefixed UTF-8 payload, refusing hostile lengths before
/// allocating.
fn read_text(
    reader: &mut impl Read,
    seq: u32,
    limit: usize,
    what: &str,
) -> Result<String, DecodeError> {
    let len = read_u32(reader)? as usize;
    if len > limit {
        return Err(DecodeError::Protocol {
            seq,
            message: format!("{what} of {len} bytes exceeds the limit of {limit}"),
        });
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| DecodeError::Protocol {
        seq,
        message: format!("{what} is not UTF-8"),
    })
}

fn push_text(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
}

impl RequestFrame {
    /// Append this frame's exact wire bytes to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let opcode = match self.body {
            FrameRequest::Json { .. } => op::JSON,
            FrameRequest::Arrive { .. } => op::ARRIVE,
            FrameRequest::Depart { .. } => op::DEPART,
            FrameRequest::Query { .. } => op::QUERY,
            FrameRequest::Bind { .. } => op::BIND,
        };
        out.push(MAGIC);
        out.push(opcode);
        out.extend_from_slice(&self.seq.to_le_bytes());
        match &self.body {
            FrameRequest::Arrive {
                tenant,
                id,
                start,
                end,
            } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
            }
            FrameRequest::Depart { tenant, id } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&id.to_le_bytes());
            }
            FrameRequest::Query { tenant } => out.extend_from_slice(&tenant.to_le_bytes()),
            FrameRequest::Bind { name } => push_text(out, name),
            FrameRequest::Json { payload } => push_text(out, payload),
        }
    }

    /// The frame's wire bytes as a fresh buffer (the worked-example tests use
    /// this; the hot paths reuse a scratch buffer through
    /// [`RequestFrame::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        self.encode_into(&mut out);
        out
    }

    /// Decode one request frame from the stream, magic byte included.
    ///
    /// An error means the connection cannot be resynchronized: the caller
    /// answers a final error frame where possible and drops the connection.
    pub fn read(reader: &mut impl Read) -> Result<Self, DecodeError> {
        let header: [u8; 6] = read_exact_array(reader)?;
        if header[0] != MAGIC {
            return Err(DecodeError::Protocol {
                seq: 0,
                message: format!("bad magic byte 0x{:02x}", header[0]),
            });
        }
        let opcode = header[1];
        let seq = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
        let body = match opcode {
            op::ARRIVE => FrameRequest::Arrive {
                tenant: read_u32(reader)?,
                id: read_u64(reader)?,
                start: read_i64(reader)?,
                end: read_i64(reader)?,
            },
            op::DEPART => FrameRequest::Depart {
                tenant: read_u32(reader)?,
                id: read_u64(reader)?,
            },
            op::QUERY => FrameRequest::Query {
                tenant: read_u32(reader)?,
            },
            op::BIND => FrameRequest::Bind {
                name: read_text(reader, seq, MAX_NAME, "a bind name")?,
            },
            op::JSON => FrameRequest::Json {
                payload: read_text(reader, seq, MAX_PAYLOAD, "a JSON payload")?,
            },
            other => {
                return Err(DecodeError::Protocol {
                    seq,
                    message: format!("unknown request opcode 0x{other:02x}"),
                })
            }
        };
        Ok(RequestFrame { seq, body })
    }
}

impl ResponseFrame {
    /// Append this frame's exact wire bytes to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let opcode = match self.body {
            FrameResponse::Json { .. } => rop::JSON,
            FrameResponse::Event { .. } => rop::EVENT,
            FrameResponse::Error { .. } => rop::ERROR,
            FrameResponse::Bound { .. } => rop::BOUND,
        };
        out.push(MAGIC);
        out.push(opcode);
        out.extend_from_slice(&self.seq.to_le_bytes());
        match &self.body {
            FrameResponse::Event {
                machine,
                cost_delta,
                cost,
            } => {
                out.extend_from_slice(&machine.to_le_bytes());
                out.extend_from_slice(&cost_delta.to_le_bytes());
                out.extend_from_slice(&cost.to_le_bytes());
            }
            FrameResponse::Bound { tenant } => out.extend_from_slice(&tenant.to_le_bytes()),
            FrameResponse::Error {
                code,
                retry_after_ms,
                message,
            } => {
                out.push(code.as_byte());
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
                push_text(out, message);
            }
            FrameResponse::Json { payload } => push_text(out, payload),
        }
    }

    /// The frame's wire bytes as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        self.encode_into(&mut out);
        out
    }

    /// Write the frame into a buffered writer without an intermediate `Vec`
    /// (the server's per-connection send path; the buffer is reused).
    pub fn write_into(&self, scratch: &mut Vec<u8>, writer: &mut impl Write) -> io::Result<()> {
        scratch.clear();
        self.encode_into(scratch);
        writer.write_all(scratch)
    }

    /// Decode one response frame from the stream, magic byte included.
    pub fn read(reader: &mut impl Read) -> Result<Self, DecodeError> {
        let header: [u8; 6] = read_exact_array(reader)?;
        if header[0] != MAGIC {
            return Err(DecodeError::Protocol {
                seq: 0,
                message: format!("bad magic byte 0x{:02x}", header[0]),
            });
        }
        let opcode = header[1];
        let seq = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
        let body = match opcode {
            rop::EVENT => FrameResponse::Event {
                machine: read_u64(reader)?,
                cost_delta: read_i64(reader)?,
                cost: read_i64(reader)?,
            },
            rop::BOUND => FrameResponse::Bound {
                tenant: read_u32(reader)?,
            },
            rop::ERROR => {
                let code = ErrorCode::from_byte(read_exact_array::<1>(reader)?[0]);
                let retry_after_ms = read_u64(reader)?;
                FrameResponse::Error {
                    code,
                    retry_after_ms,
                    message: read_text(reader, seq, MAX_PAYLOAD, "an error message")?,
                }
            }
            rop::JSON => FrameResponse::Json {
                payload: read_text(reader, seq, MAX_PAYLOAD, "a JSON payload")?,
            },
            other => {
                return Err(DecodeError::Protocol {
                    seq,
                    message: format!("unknown response opcode 0x{other:02x}"),
                })
            }
        };
        Ok(ResponseFrame { seq, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_request(frame: RequestFrame) {
        let bytes = frame.encode();
        let decoded = RequestFrame::read(&mut Cursor::new(&bytes)).expect("decodes");
        assert_eq!(decoded, frame);
        assert_eq!(decoded.encode(), bytes, "re-encoding changed the bytes");
    }

    fn round_trip_response(frame: ResponseFrame) {
        let bytes = frame.encode();
        let decoded = ResponseFrame::read(&mut Cursor::new(&bytes)).expect("decodes");
        assert_eq!(decoded, frame);
        assert_eq!(decoded.encode(), bytes, "re-encoding changed the bytes");
    }

    #[test]
    fn every_frame_shape_round_trips() {
        round_trip_request(RequestFrame {
            seq: 7,
            body: FrameRequest::Arrive {
                tenant: 3,
                id: u64::MAX,
                start: -55,
                end: i64::MAX,
            },
        });
        round_trip_request(RequestFrame {
            seq: u32::MAX,
            body: FrameRequest::Depart { tenant: 0, id: 17 },
        });
        round_trip_request(RequestFrame {
            seq: 0,
            body: FrameRequest::Query { tenant: 9 },
        });
        round_trip_request(RequestFrame {
            seq: 1,
            body: FrameRequest::Bind {
                name: "ünïcode tenant".into(),
            },
        });
        round_trip_request(RequestFrame {
            seq: 2,
            body: FrameRequest::Json {
                payload: r#"{"op":"stats"}"#.into(),
            },
        });
        round_trip_response(ResponseFrame {
            seq: 7,
            body: FrameResponse::Event {
                machine: 4,
                cost_delta: -12,
                cost: 88,
            },
        });
        round_trip_response(ResponseFrame {
            seq: 1,
            body: FrameResponse::Bound { tenant: 2 },
        });
        round_trip_response(ResponseFrame {
            seq: 3,
            body: FrameResponse::Error {
                code: ErrorCode::UnknownTenant,
                retry_after_ms: 0,
                message: "unknown tenant 'x'".into(),
            },
        });
        round_trip_response(ResponseFrame {
            seq: 8,
            body: FrameResponse::Error {
                code: ErrorCode::Overloaded,
                retry_after_ms: 25,
                message: "shard 1 queue full".into(),
            },
        });
        round_trip_response(ResponseFrame {
            seq: 4,
            body: FrameResponse::Json {
                payload: r#"{"ok":true}"#.into(),
            },
        });
    }

    #[test]
    fn retry_after_hints_above_u32_max_survive_the_binary_path() {
        // The JSON protocol carries `retry_after_ms` as u64; the binary error
        // frame must not be narrower.  Pin the boundary and beyond.
        for hint in [
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            5_000_000_000,
            u64::MAX,
        ] {
            let frame = ResponseFrame {
                seq: 11,
                body: FrameResponse::Error {
                    code: ErrorCode::Overloaded,
                    retry_after_ms: hint,
                    message: "come back later".into(),
                },
            };
            let bytes = frame.encode();
            // Header (6) + code (1) + hint (8): the hint occupies 8 wire bytes.
            assert_eq!(&bytes[7..15], &hint.to_le_bytes());
            let decoded = ResponseFrame::read(&mut Cursor::new(&bytes)).expect("decodes");
            assert_eq!(decoded, frame, "hint {hint} truncated on the binary path");
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let frame = RequestFrame {
            seq: 5,
            body: FrameRequest::Arrive {
                tenant: 1,
                id: 2,
                start: 0,
                end: 10,
            },
        };
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let err = RequestFrame::read(&mut Cursor::new(&bytes[..cut]))
                .expect_err("a truncated frame must not decode");
            assert!(matches!(err, DecodeError::Io(_)), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn hostile_lengths_and_opcodes_are_refused_without_allocating() {
        // A bind frame declaring a 3 GiB name must fail before the allocation.
        let mut bytes = vec![MAGIC, 0x04, 9, 0, 0, 0];
        bytes.extend_from_slice(&(3_000_000_000u32).to_le_bytes());
        let err = RequestFrame::read(&mut Cursor::new(&bytes)).expect_err("oversized");
        match err {
            DecodeError::Protocol { seq, message } => {
                assert_eq!(seq, 9);
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
        // Unknown opcodes name themselves.
        let err = RequestFrame::read(&mut Cursor::new(&[MAGIC, 0x7f, 0, 0, 0, 0]))
            .expect_err("unknown opcode");
        assert!(matches!(err, DecodeError::Protocol { .. }), "{err:?}");
        // A response opcode in the request direction is refused too.
        let err = RequestFrame::read(&mut Cursor::new(&[MAGIC, 0x81, 0, 0, 0, 0]))
            .expect_err("response opcode");
        assert!(matches!(err, DecodeError::Protocol { .. }), "{err:?}");
        // Wrong magic is refused immediately.
        let err = RequestFrame::read(&mut Cursor::new(&[0x42, 0, 0, 0, 0, 0])).expect_err("magic");
        assert!(
            matches!(err, DecodeError::Protocol { seq: 0, .. }),
            "{err:?}"
        );
    }
}
