//! The sharded multi-tenant registry: live schedulers behind bounded channels.
//!
//! Every tenant owns one live [`OnlineScheduler`] that survives across requests —
//! arrivals and departures mutate it incrementally through the core `MachinePool`
//! path, so a tenant with a million placed jobs answers its next request in the same
//! `O(log m)` a fresh one would, never re-solving from scratch.
//!
//! Tenants are **hash-sharded** across `N` worker shards.  Each shard is one OS
//! thread owning a plain `HashMap` of its tenants; since a tenant's scheduler is only
//! ever touched by its home shard, the hot path runs without any lock — the only
//! synchronization is the bounded [`mpsc::sync_channel`] that carries requests to the
//! shard (applying backpressure when a shard falls behind) and the rendezvous channel
//! that carries each response back.  Requests for the same tenant are therefore
//! applied in the order they were routed, while requests for tenants on different
//! shards proceed in parallel.
//!
//! [`Engine`] is the cloneable front door: the TCP server hands one clone to every
//! connection thread, the in-process tests and benchmarks call it directly.  Batch
//! solves ([`Request::Batch`]) do not touch the shards at all — they fan out through
//! [`Solver::solve_batch`] on the work-stealing pool beside them.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use busytime::online::{Event, OnlineScheduler};
use busytime::report::{ScheduleReport, SimulationReport};
use busytime::{Duration, Instance, Interval, OnlinePolicy, Problem, Solver, Time};

use crate::protocol::{BatchInstance, BatchOutcome, Request, Response};

/// Depth of each shard's request queue.  Bounded so that a shard falling behind
/// applies backpressure to its callers instead of buffering unboundedly.
const SHARD_QUEUE_DEPTH: usize = 64;

/// The trajectory window a tenant retains: at least this many of the most recent
/// per-event cost points (and at most twice as many — truncation drops the oldest
/// half in one amortized-O(1) step).  The scheduler's `arrivals`/`departures`
/// counters are unaffected, so `query` still reports the true event totals; only
/// the replayable cost history is bounded, which is what keeps a long-lived
/// tenant's memory and query latency O(window), not O(lifetime).
pub const TRAJECTORY_WINDOW: usize = 65_536;

/// Largest machine capacity `g` the wire accepts for `open`/`restore`.  The
/// in-process API trusts its caller, but a network client must not be able to make
/// one machine allocate `capacity` thread sets (an `open` with a huge `g` followed
/// by one arrival would otherwise abort the daemon on allocation failure).  2^20
/// threads per machine is far beyond any workload the paper's model contemplates.
pub const MAX_CAPACITY: usize = 1 << 20;

/// Largest absolute tick coordinate the wire accepts in a job window.  Keeps every
/// length and cost the scheduler derives far away from `i64` overflow (a window of
/// `[-i64::MAX/2, i64::MAX/2)` would wrap the busy-time arithmetic); ±2^42 ticks is
/// ~139 years at nanosecond resolution.
pub const MAX_ABS_TICK: i64 = 1 << 42;

/// One tenant's state on its home shard.
struct Tenant {
    scheduler: OnlineScheduler,
    /// Busy-time after each applied event since open (or since the last restore —
    /// the trajectory restarts at a restore point, the scheduler's counters do
    /// not), bounded to the [`TRAJECTORY_WINDOW`] most recent points.
    trajectory: Vec<i64>,
}

/// A request en route to a shard, paired with its reply channel.
struct ShardCall {
    request: Request,
    reply: mpsc::SyncSender<Response>,
}

/// The running registry: shard worker threads plus the shared counters.
///
/// Simply dropping the registry *detaches* the shard workers (they exit once every
/// queue handle is gone, but nobody observes how); call [`Registry::shutdown`] for
/// an orderly stop that joins the workers and surfaces any worker panic.
pub struct Registry {
    engine: Engine,
    handles: Vec<JoinHandle<()>>,
}

impl Registry {
    /// Spawn `shards` worker shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<ShardCall>(SHARD_QUEUE_DEPTH);
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("busytime-shard-{shard}"))
                    .spawn(move || shard_loop(rx))
                    .expect("spawning a shard worker"),
            );
        }
        Registry {
            engine: Engine {
                shards: senders,
                requests: Arc::new(AtomicU64::new(0)),
                solver: Solver::new(),
            },
            handles,
        }
    }

    /// A cloneable handle on the registry; every connection thread gets one.
    pub fn engine(&self) -> Engine {
        self.engine.clone()
    }

    /// Drop the registry's own queue handles and join the shard workers.  Blocks
    /// until every outstanding [`Engine`] clone has dropped as well.
    pub fn shutdown(self) {
        let Registry { engine, handles } = self;
        drop(engine);
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// The cloneable front door of the registry: routes tenant operations to their home
/// shard over the bounded queues and runs batch solves on the work-stealing pool.
#[derive(Clone)]
pub struct Engine {
    shards: Vec<mpsc::SyncSender<ShardCall>>,
    requests: Arc<AtomicU64>,
    solver: Solver,
}

impl Engine {
    /// Number of worker shards behind this engine.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `tenant` (stable for the registry's lifetime).
    pub fn shard_for(&self, tenant: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Apply one request and wait for its response.
    ///
    /// Tenant-scoped requests serialize per tenant (the home shard applies them in
    /// routing order); requests for different shards run in parallel.  This is the
    /// same entry point the TCP connection threads use, so the in-process tests and
    /// benchmarks exercise the identical path minus the socket.
    pub fn call(&self, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Batch { instances, budget } => self.solve_batch(&instances, budget),
            Request::Stats => self.stats(),
            request => {
                let shard = self.shard_for(request.tenant().expect("routed ops are tenant-scoped"));
                self.call_shard(shard, request)
            }
        }
    }

    /// Send one request to a specific shard and wait for the reply.
    fn call_shard(&self, shard: usize, request: Request) -> Response {
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
        if self.shards[shard]
            .send(ShardCall {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            return Response::error("the shard worker is gone");
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Response::error("the shard worker dropped the request"))
    }

    /// Server-wide counters, merged over a per-shard census.
    fn stats(&self) -> Response {
        let mut tenants = 0usize;
        for shard in 0..self.shards.len() {
            match self.call_shard(shard, Request::Stats) {
                Response::Stats { tenants: t, .. } => tenants += t,
                other => return other,
            }
        }
        Response::Stats {
            shards: self.shards.len(),
            tenants,
            requests: self.requests.load(Ordering::Relaxed),
        }
    }

    /// Fan a batch of instances out through [`Solver::solve_batch`]; per-instance
    /// failures (malformed windows, zero capacity) come back inline without failing
    /// the sibling instances.
    fn solve_batch(&self, instances: &[BatchInstance], budget: Option<i64>) -> Response {
        let budget = match budget {
            Some(t) if t < 0 => return Response::error("the budget must be non-negative"),
            Some(t) => Some(Duration::new(t)),
            None => None,
        };
        let parsed: Vec<Result<Instance, String>> = instances
            .iter()
            .enumerate()
            .map(|(i, file)| {
                Instance::try_from_ticks(&file.jobs, file.capacity)
                    .map_err(|e| format!("instance {i}: {e}"))
            })
            .collect();
        let problems: Vec<Problem> = parsed
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|instance| match budget {
                Some(t) => Problem::max_throughput(instance.clone(), t),
                None => Problem::min_busy(instance.clone()),
            })
            .collect();
        let mut solved = self.solver.solve_batch(&problems).into_iter();
        let outcomes: Vec<BatchOutcome> = parsed
            .into_iter()
            .map(|parse| match parse {
                Err(error) => BatchOutcome::Failed(error),
                Ok(instance) => match solved.next().expect("one result per valid instance") {
                    Ok(solution) => {
                        BatchOutcome::Solved(ScheduleReport::from_solution(&instance, &solution))
                    }
                    Err(error) => BatchOutcome::Failed(error.to_string()),
                },
            })
            .collect();
        Response::Batch(outcomes)
    }
}

/// A shard's event loop: apply requests to the owned tenants until every queue
/// handle is gone.
///
/// A panic while applying a request is contained to that request: the panicking
/// tenant is dropped (its state can no longer be trusted), the caller gets an
/// error response, and the shard keeps serving its other tenants — a wire client
/// must never be able to park a whole shard in the "worker is gone" state.
fn shard_loop(rx: mpsc::Receiver<ShardCall>) {
    let mut tenants: HashMap<String, Tenant> = HashMap::new();
    while let Ok(call) = rx.recv() {
        let tenant = call.request.tenant().map(str::to_string);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            apply(&mut tenants, call.request)
        }));
        let response = match outcome {
            Ok(response) => response,
            Err(_) => {
                let detail = match tenant {
                    Some(name) => {
                        tenants.remove(&name);
                        format!("; tenant '{name}' was dropped")
                    }
                    None => String::new(),
                };
                Response::error(format!("internal error applying the request{detail}"))
            }
        };
        // A caller that hung up (connection dropped mid-request) is not an error.
        let _ = call.reply.send(response);
    }
}

/// Parse and bound-check one wire job window.
///
/// The two bounds exist because the wire is a trust boundary the in-process API is
/// not: an empty window is a caller mistake, and a coordinate outside
/// [`MAX_ABS_TICK`] would let a single request overflow the `i64` length/cost
/// arithmetic downstream (wrapping the tenant's accounting in release builds,
/// panicking the shard in debug builds).
fn checked_window(start: i64, end: i64) -> Result<Interval, String> {
    if start.checked_abs().is_none_or(|s| s > MAX_ABS_TICK)
        || end.checked_abs().is_none_or(|e| e > MAX_ABS_TICK)
    {
        return Err(format!(
            "job window [{start}, {end}) is out of range (ticks must stay within ±{MAX_ABS_TICK})"
        ));
    }
    Interval::try_new(Time::new(start), Time::new(end))
        .map_err(|_| format!("job window [{start}, {end}) is empty"))
}

/// Apply one tenant-scoped request to a shard's tenant map.
fn apply(tenants: &mut HashMap<String, Tenant>, request: Request) -> Response {
    match request {
        Request::Open {
            tenant,
            capacity,
            policy,
        } => {
            let policy = match policy.as_deref().map(OnlinePolicy::parse) {
                None => OnlinePolicy::FirstFit,
                Some(Ok(policy)) => policy,
                Some(Err(error)) => return Response::error(error),
            };
            if capacity > MAX_CAPACITY {
                return Response::error(format!(
                    "capacity {capacity} exceeds the server limit of {MAX_CAPACITY}"
                ));
            }
            if tenants.contains_key(&tenant) {
                return Response::error(format!("tenant '{tenant}' is already open"));
            }
            match OnlineScheduler::new(capacity, policy) {
                Ok(scheduler) => {
                    tenants.insert(
                        tenant,
                        Tenant {
                            scheduler,
                            trajectory: Vec::new(),
                        },
                    );
                    Response::Ok
                }
                Err(error) => Response::error(error.to_string()),
            }
        }
        Request::Arrive { tenant, id, job } => {
            let interval = match checked_window(job.0, job.1) {
                Ok(interval) => interval,
                Err(error) => return Response::error(error),
            };
            with_tenant(tenants, &tenant, |t| {
                apply_event(t, &Event::arrival(id, interval))
            })
        }
        Request::Depart { tenant, id } => {
            with_tenant(tenants, &tenant, |t| apply_event(t, &Event::departure(id)))
        }
        Request::Query { tenant } => with_tenant(tenants, &tenant, |t| {
            Response::Query(SimulationReport::from_scheduler(
                &t.scheduler,
                t.trajectory.clone(),
            ))
        }),
        Request::Snapshot { tenant } => with_tenant(tenants, &tenant, |t| {
            Response::Snapshot(t.scheduler.snapshot())
        }),
        Request::Restore { tenant, snapshot } => {
            // The same wire bounds as `open`/`arrive`: a snapshot is caller-supplied
            // data, not something this server necessarily produced.
            if snapshot.capacity > MAX_CAPACITY {
                return Response::error(format!(
                    "snapshot capacity {} exceeds the server limit of {MAX_CAPACITY}",
                    snapshot.capacity
                ));
            }
            if let Some(job) = snapshot
                .jobs
                .iter()
                .find(|job| checked_window(job.start, job.end).is_err())
            {
                return Response::error(format!(
                    "snapshot job {} has an out-of-range or empty window [{}, {})",
                    job.id, job.start, job.end
                ));
            }
            match OnlineScheduler::restore(&snapshot) {
                Ok(scheduler) => {
                    tenants.insert(
                        tenant,
                        Tenant {
                            scheduler,
                            trajectory: Vec::new(),
                        },
                    );
                    Response::Ok
                }
                Err(error) => Response::error(error.to_string()),
            }
        }
        Request::Close { tenant } => match tenants.remove(&tenant) {
            Some(_) => Response::Ok,
            None => Response::error(format!("unknown tenant '{tenant}'")),
        },
        // A shard-local census used by `Engine::stats`; `shards`/`requests` are
        // filled in by the merge.
        Request::Stats => Response::Stats {
            shards: 1,
            tenants: tenants.len(),
            requests: 0,
        },
        Request::Batch { .. } => Response::error("batch requests are not tenant-scoped"),
    }
}

/// Run `f` on a tenant, or report it unknown.
fn with_tenant(
    tenants: &mut HashMap<String, Tenant>,
    tenant: &str,
    f: impl FnOnce(&mut Tenant) -> Response,
) -> Response {
    match tenants.get_mut(tenant) {
        Some(t) => f(t),
        None => Response::error(format!("unknown tenant '{tenant}'")),
    }
}

/// Apply one online event to a tenant, recording the trajectory point (bounded to
/// the [`TRAJECTORY_WINDOW`]: when the buffer reaches twice the window, the oldest
/// half is dropped in one step, so the amortized per-event cost stays O(1)).
fn apply_event(tenant: &mut Tenant, event: &Event) -> Response {
    match tenant.scheduler.apply(event) {
        Ok(effect) => {
            if tenant.trajectory.len() >= 2 * TRAJECTORY_WINDOW {
                tenant.trajectory.drain(..TRAJECTORY_WINDOW);
            }
            tenant.trajectory.push(effect.cost.ticks());
            Response::Event {
                machine: effect.machine,
                cost_delta: effect.cost_delta,
                cost: effect.cost.ticks(),
            }
        }
        Err(error) => Response::error(error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrive(tenant: &str, id: u64, job: (i64, i64)) -> Request {
        Request::Arrive {
            tenant: tenant.into(),
            id,
            job,
        }
    }

    #[test]
    fn tenant_lifecycle_through_the_engine() {
        let registry = Registry::new(2);
        let engine = registry.engine();
        assert!(engine
            .call(Request::Open {
                tenant: "a".into(),
                capacity: 2,
                policy: None,
            })
            .is_ok());
        // Re-opening is an error; the original state is untouched.
        assert!(!engine
            .call(Request::Open {
                tenant: "a".into(),
                capacity: 9,
                policy: None,
            })
            .is_ok());

        let r = engine.call(arrive("a", 1, (0, 10)));
        let Response::Event {
            machine,
            cost_delta,
            cost,
        } = r
        else {
            panic!("expected an event response, got {r:?}");
        };
        assert_eq!((machine, cost_delta, cost), (0, 10, 10));
        engine.call(arrive("a", 2, (4, 12)));
        let r = engine.call(Request::Depart {
            tenant: "a".into(),
            id: 1,
        });
        assert!(r.is_ok());

        let Response::Query(report) = engine.call(Request::Query { tenant: "a".into() }) else {
            panic!("expected a query response");
        };
        assert_eq!(report.arrivals, 2);
        assert_eq!(report.departures, 1);
        assert_eq!(report.cost_trajectory, vec![10, 12, 8]);
        assert_eq!(report.live_jobs, 1);

        assert!(engine.call(Request::Close { tenant: "a".into() }).is_ok());
        assert!(!engine.call(Request::Query { tenant: "a".into() }).is_ok());
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn errors_name_the_problem() {
        let registry = Registry::new(1);
        let engine = registry.engine();
        let Response::Error(e) = engine.call(Request::Query {
            tenant: "ghost".into(),
        }) else {
            panic!("expected an error");
        };
        assert!(e.contains("ghost"), "{e}");
        assert!(engine
            .call(Request::Open {
                tenant: "t".into(),
                capacity: 1,
                policy: None,
            })
            .is_ok());
        let Response::Error(e) = engine.call(arrive("t", 1, (5, 5))) else {
            panic!("expected an error");
        };
        assert!(e.contains("[5, 5)"), "{e}");
        let Response::Error(e) = engine.call(Request::Depart {
            tenant: "t".into(),
            id: 42,
        }) else {
            panic!("expected an error");
        };
        assert!(e.contains("42"), "{e}");
        // An unknown policy is rejected at open.
        let Response::Error(e) = engine.call(Request::Open {
            tenant: "u".into(),
            capacity: 1,
            policy: Some("bogus".into()),
        }) else {
            panic!("expected an error");
        };
        assert!(e.contains("bogus"), "{e}");
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn snapshot_restore_moves_tenants() {
        let registry = Registry::new(2);
        let engine = registry.engine();
        engine.call(Request::Open {
            tenant: "src".into(),
            capacity: 1,
            policy: Some("best-fit".into()),
        });
        engine.call(arrive("src", 1, (0, 10)));
        engine.call(arrive("src", 2, (5, 15)));
        let Response::Snapshot(snapshot) = engine.call(Request::Snapshot {
            tenant: "src".into(),
        }) else {
            panic!("expected a snapshot");
        };
        // Restore under a *different* tenant name (possibly another shard).
        assert!(engine
            .call(Request::Restore {
                tenant: "dst".into(),
                snapshot,
            })
            .is_ok());
        let Response::Query(src) = engine.call(Request::Query {
            tenant: "src".into(),
        }) else {
            panic!()
        };
        let Response::Query(dst) = engine.call(Request::Query {
            tenant: "dst".into(),
        }) else {
            panic!()
        };
        assert_eq!(src.final_cost, dst.final_cost);
        assert_eq!(src.machine_groups, dst.machine_groups);
        assert_eq!(src.arrivals, dst.arrivals);
        // The trajectory restarts at the restore point by design.
        assert!(dst.cost_trajectory.is_empty());
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn batch_and_stats() {
        let registry = Registry::new(3);
        let engine = registry.engine();
        engine.call(Request::Open {
            tenant: "a".into(),
            capacity: 1,
            policy: None,
        });
        engine.call(Request::Open {
            tenant: "b".into(),
            capacity: 1,
            policy: None,
        });
        let Response::Batch(outcomes) = engine.call(Request::Batch {
            instances: vec![
                BatchInstance {
                    capacity: 2,
                    jobs: vec![(0, 10), (2, 12)],
                },
                BatchInstance {
                    capacity: 0,
                    jobs: vec![(0, 1)],
                },
            ],
            budget: None,
        }) else {
            panic!("expected a batch response");
        };
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(&outcomes[0], BatchOutcome::Solved(r) if r.scheduled_jobs == 2));
        assert!(matches!(&outcomes[1], BatchOutcome::Failed(e) if e.contains("instance 1")));
        assert!(matches!(
            engine.call(Request::Batch {
                instances: vec![],
                budget: Some(-3),
            }),
            Response::Error(_)
        ));

        let Response::Stats {
            shards,
            tenants,
            requests,
        } = engine.call(Request::Stats)
        else {
            panic!("expected stats");
        };
        assert_eq!(shards, 3);
        assert_eq!(tenants, 2);
        assert!(requests >= 4);
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn wire_bounds_reject_hostile_requests() {
        let mut tenants = HashMap::new();
        // A capacity that would make the first arrival allocate `capacity` thread
        // sets is refused at open...
        let Response::Error(e) = apply(
            &mut tenants,
            Request::Open {
                tenant: "t".into(),
                capacity: MAX_CAPACITY + 1,
                policy: None,
            },
        ) else {
            panic!("expected an error");
        };
        assert!(e.contains("server limit"), "{e}");
        // ...and at restore.
        let mut snapshot = OnlineScheduler::new(1, OnlinePolicy::FirstFit)
            .unwrap()
            .snapshot();
        snapshot.capacity = MAX_CAPACITY + 1;
        let Response::Error(e) = apply(
            &mut tenants,
            Request::Restore {
                tenant: "t".into(),
                snapshot,
            },
        ) else {
            panic!("expected an error");
        };
        assert!(e.contains("server limit"), "{e}");

        // A job window wide enough to overflow i64 length arithmetic is refused
        // before it reaches the scheduler.
        apply(
            &mut tenants,
            Request::Open {
                tenant: "t".into(),
                capacity: 1,
                policy: None,
            },
        );
        for (s, e) in [
            (i64::MIN, i64::MAX),
            (-(MAX_ABS_TICK + 1), 0),
            (0, MAX_ABS_TICK + 1),
        ] {
            let Response::Error(error) = apply(&mut tenants, arrive("t", 1, (s, e))) else {
                panic!("expected an error for [{s}, {e})");
            };
            assert!(error.contains("out of range"), "{error}");
        }
        // A snapshot smuggling such a window is refused too.
        let mut scheduler = OnlineScheduler::new(1, OnlinePolicy::FirstFit).unwrap();
        scheduler
            .apply(&Event::arrival(1, Interval::from_ticks(0, 5)))
            .unwrap();
        let mut snapshot = scheduler.snapshot();
        snapshot.jobs[0].start = i64::MIN;
        let Response::Error(error) = apply(
            &mut tenants,
            Request::Restore {
                tenant: "u".into(),
                snapshot,
            },
        ) else {
            panic!("expected an error");
        };
        assert!(error.contains("out-of-range"), "{error}");
        // In-range requests still flow.
        assert!(apply(&mut tenants, arrive("t", 1, (0, MAX_ABS_TICK))).is_ok());
    }

    #[test]
    fn trajectory_is_bounded_but_counters_are_not() {
        // Drive a tenant far past the retention window (map-level, no channels):
        // memory stays O(window) while the true event totals keep counting.
        let mut tenants = HashMap::new();
        apply(
            &mut tenants,
            Request::Open {
                tenant: "t".into(),
                capacity: 1,
                policy: None,
            },
        );
        let rounds = TRAJECTORY_WINDOW + 5;
        for i in 0..rounds as u64 {
            let s = i as i64;
            assert!(apply(&mut tenants, arrive("t", i, (s, s + 1))).is_ok());
            assert!(apply(
                &mut tenants,
                Request::Depart {
                    tenant: "t".into(),
                    id: i,
                },
            )
            .is_ok());
        }
        let tenant = &tenants["t"];
        assert!(tenant.trajectory.len() <= 2 * TRAJECTORY_WINDOW);
        assert!(tenant.trajectory.len() >= TRAJECTORY_WINDOW);
        let Response::Query(report) = apply(&mut tenants, Request::Query { tenant: "t".into() })
        else {
            panic!("expected a query response");
        };
        assert_eq!(report.events, 2 * rounds);
        assert_eq!(report.arrivals, rounds);
        assert_eq!(report.departures, rounds);
        assert_eq!(report.cost_trajectory.len(), tenants["t"].trajectory.len());
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let registry = Registry::new(4);
        let engine = registry.engine();
        for name in ["a", "b", "c", "tenant-42", ""] {
            let s = engine.shard_for(name);
            assert!(s < 4);
            assert_eq!(s, engine.shard_for(name));
        }
        drop(engine);
        registry.shutdown();
    }
}
