//! The sharded multi-tenant registry: live schedulers behind bounded channels.
//!
//! Every tenant owns one live [`OnlineScheduler`] that survives across requests —
//! arrivals and departures mutate it incrementally through the core `MachinePool`
//! path, so a tenant with a million placed jobs answers its next request in the same
//! `O(log m)` a fresh one would, never re-solving from scratch.
//!
//! Tenants are **hash-sharded** across `N` worker shards.  Each shard is one OS
//! thread owning a plain `HashMap` of its tenants; since a tenant's scheduler is only
//! ever touched by its home shard, the hot path runs without any lock — the only
//! synchronization is the bounded [`mpsc::sync_channel`] that carries request
//! *batches* to the shard (applying backpressure when a shard falls behind) and the
//! rendezvous channel that carries the responses back.  [`Engine::call`] sends a
//! batch of one; [`Engine::call_many`] — the pipelined connection handler's path —
//! coalesces every decoded request bound for the same shard into a single channel
//! send, amortizing the synchronization over the whole window.  Requests for the
//! same tenant are applied in the order they were routed either way, while requests
//! for tenants on different shards proceed in parallel.
//!
//! [`Engine`] is the cloneable front door: the TCP server hands one clone to every
//! connection thread, the in-process tests and benchmarks call it directly.  Batch
//! solves ([`Request::Batch`]) do not touch the shards at all — they fan out through
//! [`Solver::solve_batch`] on the work-stealing pool beside them.
//!
//! **Durability** is opt-in per registry ([`Registry::with_durability`]): each shard
//! then writes every applied mutation to its tenant's `busytime-durability` journal
//! *before* acknowledging it, recovers its tenants from disk at startup (restore the
//! newest snapshot, replay the journal tail through the same `apply_event` path
//! requests take), and compacts a tenant's log inline once it crosses the configured
//! threshold — at most one compaction per applied request, so the shard's tail
//! latency stays bounded by one snapshot write.  Without a [`DurabilityConfig`] the
//! registry behaves exactly as before: purely in-memory, byte-identical responses.
//!
//! **Admission control** is opt-in per registry ([`AdmissionConfig`] via
//! [`RegistryConfig`]): per-tenant token-bucket rate quotas and in-flight caps shed
//! a flooding tenant's excess with an explicit retryable `overloaded` error before
//! it can monopolize a shard's bounded queue, and the shard handoff itself becomes
//! bounded-wait — a queue still full past the configured deadline answers
//! `overloaded` (with a retry-after hint) instead of stalling the connection.
//! Without an admission config, handoff blocks exactly as before.
//!
//! **Shard supervision**: a shard worker that dies (only possible today via an
//! injected [`FaultPlan`] kill — every apply panic is caught and contained) is
//! respawned in-process on the next request routed to it, re-running the same WAL
//! recovery a process restart would.  On a durable registry its tenants come back
//! with every acknowledged event; on an in-memory registry a respawned shard is
//! empty (that is what durability is for).

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use busytime::online::{CompactEffect, Event, OnlineScheduler, OnlineSnapshot};
use busytime::report::{ScheduleReport, SimulationReport};
use busytime::{Duration, Instance, Interval, OnlinePolicy, Problem, Solver, Time};
use busytime_durability::{FaultInjector, IoPoint, Store, TenantLog};

use crate::faults::{FaultKind, FaultPlan, InjectedKill};
use crate::protocol::{
    BatchInstance, BatchOutcome, ErrorCode, HealthReport, Request, Response, ShardHealth,
    TenantHealth,
};

/// Depth of each shard's request queue.  Bounded so that a shard falling behind
/// applies backpressure to its callers instead of buffering unboundedly.
const SHARD_QUEUE_DEPTH: usize = 64;

/// The trajectory window a tenant retains: at least this many of the most recent
/// per-event cost points (and at most twice as many — truncation drops the oldest
/// half in one amortized-O(1) step).  The scheduler's `arrivals`/`departures`
/// counters are unaffected, so `query` still reports the true event totals; only
/// the replayable cost history is bounded, which is what keeps a long-lived
/// tenant's memory and query latency O(window), not O(lifetime).
pub const TRAJECTORY_WINDOW: usize = 65_536;

/// Largest machine capacity `g` the wire accepts for `open`/`restore`.  The
/// in-process API trusts its caller, but a network client must not be able to make
/// one machine allocate `capacity` thread sets (an `open` with a huge `g` followed
/// by one arrival would otherwise abort the daemon on allocation failure).  2^20
/// threads per machine is far beyond any workload the paper's model contemplates.
pub const MAX_CAPACITY: usize = 1 << 20;

/// Largest absolute tick coordinate the wire accepts in a job window.  Keeps every
/// length and cost the scheduler derives far away from `i64` overflow (a window of
/// `[-i64::MAX/2, i64::MAX/2)` would wrap the busy-time arithmetic); ±2^42 ticks is
/// ~139 years at nanosecond resolution.
pub const MAX_ABS_TICK: i64 = 1 << 42;

/// How a durable registry persists its tenants; passed to
/// [`Registry::with_durability`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory for the store — one subdirectory per tenant, created on
    /// demand.  Scanned at startup to rebuild every tenant that was open when
    /// the previous process died.
    pub data_dir: PathBuf,
    /// Group-commit size: `fsync` once per this many journal appends.  Every
    /// append is still `write(2)`-through immediately, so a killed *process*
    /// loses nothing acknowledged; only a machine crash can cost up to
    /// `fsync_batch - 1` trailing events.
    pub fsync_batch: usize,
    /// Compact a tenant's log (snapshot + truncate) once its journal holds
    /// this many records.  Compaction runs inline on the shard, at most once
    /// per applied request, so tail latency is bounded by one snapshot write.
    pub compact_threshold: u64,
}

impl DurabilityConfig {
    /// A config with the default group-commit batch (64) and compaction
    /// threshold (8192 journal records).
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync_batch: 64,
            compact_threshold: 8192,
        }
    }
}

/// Per-tenant admission control and load-shedding policy; opt-in via
/// [`RegistryConfig::admission`].  When present, the shard handoff also becomes
/// bounded-wait: a queue still full after [`AdmissionConfig::queue_wait_ms`]
/// sheds the batch with `overloaded` instead of stalling the caller.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Per-tenant in-flight request cap.  The guard is held from admission
    /// until the response is handed back, so one flooding tenant can keep at
    /// most this many slots of its shard's queue busy.
    pub max_inflight: usize,
    /// Per-tenant rate quota in requests/second (token bucket with a burst of
    /// one second's worth); `None` disables rate limiting.
    pub tenant_rate: Option<f64>,
    /// How long a shard handoff may wait on a full queue before shedding.
    pub queue_wait_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 1024,
            tenant_rate: None,
            queue_wait_ms: 50,
        }
    }
}

/// Everything [`Registry::with_config`] accepts: shard count plus the opt-in
/// durability, admission, and fault-injection layers.
#[derive(Clone, Default)]
pub struct RegistryConfig {
    /// Worker shards to spawn (clamped to at least 1).
    pub shards: usize,
    /// Persist tenants under this config's data directory when given.
    pub durability: Option<DurabilityConfig>,
    /// Shed per-tenant overload when given; otherwise handoff blocks.
    pub admission: Option<AdmissionConfig>,
    /// Deterministic fault schedule for chaos tests; inert when absent.
    pub faults: Option<FaultPlan>,
    /// Background defragmentation budget: when given, every applied event is
    /// followed by one `compact(K)` pass on its tenant (journaled through the
    /// same mutation path, so recovery replays it at the same point).
    pub defrag_budget: Option<usize>,
}

impl RegistryConfig {
    /// An in-memory config with `shards` workers and no optional layers.
    pub fn new(shards: usize) -> Self {
        RegistryConfig {
            shards,
            ..RegistryConfig::default()
        }
    }
}

/// A token bucket's live state: fractional tokens plus the last refill instant.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// One tenant's admission state.
#[derive(Debug)]
struct TenantGate {
    inflight: AtomicUsize,
    shed: AtomicU64,
    bucket: Mutex<Bucket>,
}

impl TenantGate {
    fn new(rate: Option<f64>) -> Self {
        TenantGate {
            inflight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            bucket: Mutex::new(Bucket {
                // A fresh tenant starts with a full bucket (one second's burst).
                tokens: rate.map_or(0.0, |r| r.max(1.0)),
                last: Instant::now(),
            }),
        }
    }
}

/// Decrements its tenant's in-flight count when the request's response is in
/// hand (or the request was dropped on the floor).
struct InflightGuard {
    gate: Arc<TenantGate>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Shared admission state: the config plus one gate per tenant seen.
struct Admission {
    config: AdmissionConfig,
    tenants: Mutex<HashMap<String, Arc<TenantGate>>>,
}

impl Admission {
    fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn gate(&self, tenant: &str) -> Arc<TenantGate> {
        let mut map = self.tenants.lock().expect("admission map lock");
        map.entry(tenant.to_string())
            .or_insert_with(|| Arc::new(TenantGate::new(self.config.tenant_rate)))
            .clone()
    }

    /// Admit one request for `tenant`: check the in-flight cap and the rate
    /// quota, or answer the `overloaded` response the caller should return.
    /// The `Err` carries the full `Response` by design — it travels straight
    /// back to the caller on the one path where size does not matter.
    #[allow(clippy::result_large_err)]
    fn admit(&self, tenant: &str) -> Result<InflightGuard, Response> {
        let gate = self.gate(tenant);
        let previous = gate.inflight.fetch_add(1, Ordering::AcqRel);
        if previous >= self.config.max_inflight {
            gate.inflight.fetch_sub(1, Ordering::AcqRel);
            gate.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Response::overloaded(
                format!(
                    "tenant '{tenant}' already has {previous} request(s) in flight \
                     (cap {})",
                    self.config.max_inflight
                ),
                self.config.queue_wait_ms.max(1),
            ));
        }
        let guard = InflightGuard { gate: gate.clone() };
        if let Some(rate) = self.config.tenant_rate {
            let mut bucket = gate.bucket.lock().expect("token bucket lock");
            let now = Instant::now();
            let elapsed = now.duration_since(bucket.last).as_secs_f64();
            bucket.last = now;
            bucket.tokens = (bucket.tokens + elapsed * rate).min(rate.max(1.0));
            if bucket.tokens >= 1.0 {
                bucket.tokens -= 1.0;
            } else {
                let wait_ms = (((1.0 - bucket.tokens) / rate) * 1000.0).ceil() as u64;
                drop(bucket);
                gate.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Response::overloaded(
                    format!("tenant '{tenant}' exceeded its quota of {rate} request(s)/s"),
                    wait_ms.max(1),
                ));
            }
        }
        Ok(guard)
    }

    /// Record a queue-full shed against `tenant` (the request was admitted but
    /// its shard's queue never drained).
    fn note_shed(&self, tenant: &str) {
        self.gate(tenant).shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Tenants that have been shed at least once, sorted by name.
    fn degraded(&self) -> Vec<TenantHealth> {
        let map = self.tenants.lock().expect("admission map lock");
        let mut out: Vec<TenantHealth> = map
            .iter()
            .filter_map(|(name, gate)| {
                let shed = gate.shed.load(Ordering::Relaxed);
                (shed > 0).then(|| TenantHealth {
                    tenant: name.clone(),
                    shed,
                    inflight: gate.inflight.load(Ordering::Relaxed),
                })
            })
            .collect();
        out.sort_unstable_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

/// A shard's handle on the durable store plus the compaction policy.
#[derive(Clone)]
struct ShardStore {
    store: Store,
    compact_threshold: u64,
}

/// Everything one shard worker owns: its tenants, and (when durability is on)
/// its store handle.
struct ShardState {
    tenants: HashMap<String, Tenant>,
    store: Option<ShardStore>,
    /// Moves each auto-defrag pass may commit; `None` disables the pass.
    defrag_budget: Option<usize>,
}

impl ShardState {
    /// A store-less shard, as the map-level unit tests drive it.
    #[cfg(test)]
    fn in_memory() -> Self {
        ShardState {
            tenants: HashMap::new(),
            store: None,
            defrag_budget: None,
        }
    }
}

/// One tenant's state on its home shard.
struct Tenant {
    scheduler: OnlineScheduler,
    /// Busy-time after each applied event since open (or since the last restore —
    /// the trajectory restarts at a restore point, the scheduler's counters do
    /// not), bounded to the [`TRAJECTORY_WINDOW`] most recent points.
    trajectory: Vec<i64>,
    /// The tenant's write-ahead log; `None` on in-memory registries.
    log: Option<TenantLog>,
}

/// A batch of requests en route to one shard, paired with its reply channel.
///
/// The batch is the unit of channel traffic: coalescing `k` decoded requests for
/// the same shard into one bounded-channel send amortizes the synchronization
/// cost that used to be paid per request, while the shard still applies the
/// requests strictly in batch order (so per-tenant ordering is untouched — a
/// tenant lives on exactly one shard).
struct ShardCall {
    requests: Vec<Request>,
    reply: mpsc::SyncSender<Vec<Response>>,
}

/// Live counters for one shard slot, shared between the engine (which fills
/// them) and the `health` report (which reads them).
#[derive(Debug, Default)]
struct ShardMetrics {
    /// Requests queued or being applied on the shard right now (approximate:
    /// reset on respawn, saturating on the way down).
    queued: AtomicUsize,
    /// Requests shed at this shard's handoff (queue-full timeouts).
    shed: AtomicU64,
    /// Times this shard's worker died and was respawned.
    respawns: AtomicU64,
}

/// One shard's supervised mailbox: the live sender (swapped on respawn), a
/// generation counter so concurrent callers respawn at most once per death,
/// and the shared metrics.
struct ShardSlot {
    generation: AtomicU64,
    sender: RwLock<mpsc::SyncSender<ShardCall>>,
    metrics: Arc<ShardMetrics>,
}

/// Spawns shard workers — at startup and again when one dies — and keeps their
/// join handles for [`Registry::shutdown`].
struct Supervisor {
    shard_store: Option<ShardStore>,
    shards: usize,
    faults: Option<FaultPlan>,
    defrag_budget: Option<usize>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Supervisor {
    /// Spawn a fresh worker for `shard`: recover its tenants from the store
    /// (a no-op in-memory), then serve its queue.  Returns the new sender.
    fn spawn_worker(
        &self,
        shard: usize,
        metrics: Arc<ShardMetrics>,
    ) -> mpsc::SyncSender<ShardCall> {
        let (tx, rx) = mpsc::sync_channel::<ShardCall>(SHARD_QUEUE_DEPTH);
        let store = self.shard_store.clone();
        let shards = self.shards;
        let faults = self.faults.clone();
        let defrag_budget = self.defrag_budget;
        let handle = std::thread::Builder::new()
            .name(format!("busytime-shard-{shard}"))
            .spawn(move || {
                let mut state = ShardState {
                    tenants: HashMap::new(),
                    store,
                    defrag_budget,
                };
                recover_shard(&mut state, shard, shards);
                shard_loop(rx, state, metrics, faults)
            })
            .expect("spawning a shard worker");
        self.handles
            .lock()
            .expect("supervisor handle lock")
            .push(handle);
        tx
    }
}

/// The running registry: shard worker threads plus the shared counters.
///
/// Simply dropping the registry *detaches* the shard workers (they exit once every
/// queue handle is gone, but nobody observes how); call [`Registry::shutdown`] for
/// an orderly stop that joins the workers and surfaces any worker panic.
pub struct Registry {
    engine: Engine,
}

impl Registry {
    /// Spawn `shards` purely in-memory worker shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self::with_config(RegistryConfig::new(shards))
            .expect("an in-memory registry touches no disk")
    }

    /// Spawn `shards` worker shards (clamped to at least 1), persisting every
    /// tenant under `durability.data_dir` when a config is given.  Each shard
    /// rebuilds its own tenants from the data directory before serving its
    /// first request (requests queue behind recovery, so callers simply see
    /// the first responses after the rebuild).  A tenant whose on-disk state
    /// cannot be restored is skipped with a diagnostic on stderr — the server
    /// keeps serving every tenant that does recover.
    pub fn with_durability(
        shards: usize,
        durability: Option<DurabilityConfig>,
    ) -> std::io::Result<Self> {
        Self::with_config(RegistryConfig {
            shards,
            durability,
            ..RegistryConfig::default()
        })
    }

    /// Spawn a registry from a full [`RegistryConfig`]: shard count plus the
    /// opt-in durability, admission-control, and fault-injection layers.
    pub fn with_config(config: RegistryConfig) -> std::io::Result<Self> {
        let shards = config.shards.max(1);
        let shard_store = match config.durability {
            Some(durability) => {
                let mut store = Store::open(&durability.data_dir, durability.fsync_batch)?;
                if let Some(plan) = &config.faults {
                    let plan = plan.clone();
                    store.set_injector(Some(FaultInjector::new(move |point| {
                        let (kind, what) = match point {
                            IoPoint::Append => {
                                (FaultKind::WalAppend, "injected WAL append failure")
                            }
                            IoPoint::Sync => (FaultKind::WalSync, "injected WAL fsync failure"),
                        };
                        plan.fire(kind).then(|| std::io::Error::other(what))
                    })));
                }
                Some(ShardStore {
                    store,
                    compact_threshold: durability.compact_threshold.max(1),
                })
            }
            None => None,
        };
        let supervisor = Arc::new(Supervisor {
            shard_store,
            shards,
            faults: config.faults.clone(),
            defrag_budget: config.defrag_budget.filter(|&k| k > 0),
            handles: Mutex::new(Vec::with_capacity(shards)),
        });
        let slots: Vec<ShardSlot> = (0..shards)
            .map(|shard| {
                let metrics = Arc::new(ShardMetrics::default());
                let sender = supervisor.spawn_worker(shard, metrics.clone());
                ShardSlot {
                    generation: AtomicU64::new(0),
                    sender: RwLock::new(sender),
                    metrics,
                }
            })
            .collect();
        Ok(Registry {
            engine: Engine {
                shards: Arc::new(slots),
                requests: Arc::new(AtomicU64::new(0)),
                solver: Solver::new(),
                admission: config.admission.map(|a| Arc::new(Admission::new(a))),
                faults: config.faults,
                supervisor,
            },
        })
    }

    /// A cloneable handle on the registry; every connection thread gets one.
    pub fn engine(&self) -> Engine {
        self.engine.clone()
    }

    /// Drop the registry's own queue handles and join the shard workers.  Blocks
    /// until every outstanding [`Engine`] clone has dropped as well.  Worker
    /// deaths planned by a [`FaultPlan`] are expected and tolerated; any other
    /// worker panic is resurfaced here.
    pub fn shutdown(self) {
        let Registry { engine } = self;
        let supervisor = engine.supervisor.clone();
        drop(engine);
        // Respawns may add handles while earlier ones are being joined, so
        // drain until the list stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut guard = supervisor.handles.lock().expect("supervisor handle lock");
                guard.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                if let Err(panic) = handle.join() {
                    if !panic.is::<InjectedKill>() {
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    }
}

/// How a shard handoff failed.
enum ShardSendError {
    /// The queue stayed full past the bounded-wait deadline (admission only).
    Full,
    /// The worker is dead and a respawn retry also failed.
    Gone,
}

/// The cloneable front door of the registry: routes tenant operations to their home
/// shard over the bounded queues and runs batch solves on the work-stealing pool.
#[derive(Clone)]
pub struct Engine {
    shards: Arc<Vec<ShardSlot>>,
    requests: Arc<AtomicU64>,
    solver: Solver,
    admission: Option<Arc<Admission>>,
    faults: Option<FaultPlan>,
    supervisor: Arc<Supervisor>,
}

impl Engine {
    /// Number of worker shards behind this engine.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `tenant` (stable for the registry's lifetime).
    pub fn shard_for(&self, tenant: &str) -> usize {
        shard_index(tenant, self.shards.len())
    }

    /// The fault plan this engine was built with, if any (the serve loop
    /// consults it for connection-level faults).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Apply one request and wait for its response.
    ///
    /// Tenant-scoped requests serialize per tenant (the home shard applies them in
    /// routing order); requests for different shards run in parallel.  This is the
    /// same entry point the TCP connection threads use, so the in-process tests and
    /// benchmarks exercise the identical path minus the socket.
    pub fn call(&self, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.call_one(request)
    }

    /// Route one already-counted request: engine-side ops run inline, tenant
    /// ops pass admission control (when that layer is on) and go to their
    /// home shard.
    fn call_one(&self, request: Request) -> Response {
        match request {
            Request::Batch { instances, budget } => self.solve_batch(&instances, budget),
            Request::Stats => self.stats(),
            Request::Health => self.health(),
            request => {
                let tenant = request.tenant().expect("routed ops are tenant-scoped");
                let _guard = match self.admit(tenant) {
                    Ok(guard) => guard,
                    Err(response) => return response,
                };
                let shard = self.shard_for(tenant);
                self.call_shard(shard, vec![request])
                    .pop()
                    .unwrap_or_else(no_shard_response)
            }
        }
    }

    /// Run `tenant` through admission control.  `Ok` carries the in-flight
    /// guard to hold until the response is collected; `Err` is the overload
    /// response to send instead of doing any work.
    #[allow(clippy::result_large_err)]
    fn admit(&self, tenant: &str) -> Result<Option<InflightGuard>, Response> {
        match &self.admission {
            Some(admission) => admission.admit(tenant).map(Some),
            None => Ok(None),
        }
    }

    /// Apply a batch of requests and return their responses in request order.
    ///
    /// This is the pipelined fast path: the batch is partitioned per shard with
    /// relative order preserved, each shard gets **one** bounded-channel send for
    /// its whole sub-batch (instead of one per request), all shards work their
    /// sub-batches in parallel, and the replies are reassembled into request
    /// order.  A tenant hashes to exactly one shard, so every tenant still sees
    /// its requests applied in the order they were submitted.  Non-tenant
    /// requests (`batch`, `stats`) run engine-side at their position in the
    /// batch, before the shard sub-batches dispatch.
    pub fn call_many(&self, requests: Vec<Request>) -> Vec<Response> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        if requests.len() == 1 {
            let request = requests.into_iter().next().expect("one request");
            return vec![self.call_one(request)];
        }
        let mut slots: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        let mut guards: Vec<InflightGuard> = Vec::new();
        let mut per_shard: Vec<(Vec<usize>, Vec<Request>)> = (0..self.shards.len())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for (i, request) in requests.into_iter().enumerate() {
            match request {
                Request::Batch { instances, budget } => {
                    slots[i] = Some(self.solve_batch(&instances, budget));
                }
                Request::Stats => slots[i] = Some(self.stats()),
                Request::Health => slots[i] = Some(self.health()),
                request => {
                    let tenant = request.tenant().expect("routed ops are tenant-scoped");
                    match self.admit(tenant) {
                        Err(response) => slots[i] = Some(response),
                        Ok(guard) => {
                            guards.extend(guard);
                            let shard = self.shard_for(tenant);
                            per_shard[shard].0.push(i);
                            per_shard[shard].1.push(request);
                        }
                    }
                }
            }
        }
        // Send every sub-batch before waiting on any reply, so the shards run in
        // parallel; then fill the slots back in request order.
        let mut outstanding: Vec<(Vec<usize>, mpsc::Receiver<Vec<Response>>)> = Vec::new();
        for (shard, (indices, batch)) in per_shard.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let expected = batch.len();
            self.shards[shard]
                .metrics
                .queued
                .fetch_add(expected, Ordering::Relaxed);
            let (reply_tx, reply_rx) = mpsc::sync_channel::<Vec<Response>>(1);
            match self.send_to_shard(
                shard,
                ShardCall {
                    requests: batch,
                    reply: reply_tx,
                },
            ) {
                Ok(()) => outstanding.push((indices, reply_rx)),
                Err((call, error)) => {
                    let _ = self.shards[shard].metrics.queued.fetch_update(
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                        |v| Some(v.saturating_sub(expected)),
                    );
                    for (i, response) in indices
                        .into_iter()
                        .zip(self.send_failure(shard, call, error))
                    {
                        slots[i] = Some(response);
                    }
                }
            }
        }
        for (indices, reply_rx) in outstanding {
            match reply_rx.recv() {
                Ok(responses) => {
                    for (i, response) in indices.into_iter().zip(responses) {
                        slots[i] = Some(response);
                    }
                }
                Err(_) => {
                    for i in indices {
                        slots[i] = Some(Response::fail(
                            ErrorCode::Unavailable,
                            "the shard worker dropped the request",
                        ));
                    }
                }
            }
        }
        drop(guards);
        slots
            .into_iter()
            .map(|slot| slot.unwrap_or_else(no_shard_response))
            .collect()
    }

    /// Send one batch to a specific shard and wait for the replies.
    fn call_shard(&self, shard: usize, requests: Vec<Request>) -> Vec<Response> {
        let expected = requests.len();
        self.shards[shard]
            .metrics
            .queued
            .fetch_add(expected, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Vec<Response>>(1);
        if let Err((call, error)) = self.send_to_shard(
            shard,
            ShardCall {
                requests,
                reply: reply_tx,
            },
        ) {
            let _ = self.shards[shard].metrics.queued.fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| Some(v.saturating_sub(expected)),
            );
            return self.send_failure(shard, call, error);
        }
        reply_rx.recv().unwrap_or_else(|_| {
            (0..expected)
                .map(|_| {
                    Response::fail(
                        ErrorCode::Unavailable,
                        "the shard worker dropped the request",
                    )
                })
                .collect()
        })
    }

    /// Hand one batch to a shard's queue.
    ///
    /// Without admission control this blocks until the queue accepts the batch
    /// (the original backpressure semantics).  With admission control the wait
    /// is bounded by `queue_wait_ms`, after which the batch comes back as
    /// [`ShardSendError::Full`] for the caller to shed.  A dead worker is
    /// respawned once (its tenants recover from the WAL when durability is on)
    /// and the send retried — safe because a failed send never delivered the
    /// batch — before giving up as [`ShardSendError::Gone`].
    fn send_to_shard(
        &self,
        shard: usize,
        mut call: ShardCall,
    ) -> Result<(), (ShardCall, ShardSendError)> {
        let slot = &self.shards[shard];
        for attempt in 0..2 {
            let (sender, generation) = {
                let guard = slot.sender.read().expect("shard sender lock");
                (guard.clone(), slot.generation.load(Ordering::Acquire))
            };
            match &self.admission {
                None => match sender.send(call) {
                    Ok(()) => return Ok(()),
                    Err(mpsc::SendError(returned)) => call = returned,
                },
                Some(admission) => {
                    let deadline = Instant::now()
                        + std::time::Duration::from_millis(admission.config.queue_wait_ms);
                    loop {
                        match sender.try_send(call) {
                            Ok(()) => return Ok(()),
                            Err(mpsc::TrySendError::Full(returned)) => {
                                call = returned;
                                if Instant::now() >= deadline {
                                    return Err((call, ShardSendError::Full));
                                }
                                std::thread::sleep(std::time::Duration::from_micros(100));
                            }
                            Err(mpsc::TrySendError::Disconnected(returned)) => {
                                call = returned;
                                break;
                            }
                        }
                    }
                }
            }
            if attempt == 0 {
                self.respawn_shard(shard, generation);
            }
        }
        Err((call, ShardSendError::Gone))
    }

    /// Replace a dead shard worker, unless another caller already did (the
    /// generation moved past what this caller observed).
    fn respawn_shard(&self, shard: usize, observed_generation: u64) {
        let slot = &self.shards[shard];
        let mut sender = slot.sender.write().expect("shard sender lock");
        if slot.generation.load(Ordering::Acquire) != observed_generation {
            return;
        }
        *sender = self.supervisor.spawn_worker(shard, slot.metrics.clone());
        slot.generation.fetch_add(1, Ordering::AcqRel);
        slot.metrics.respawns.fetch_add(1, Ordering::Relaxed);
        slot.metrics.queued.store(0, Ordering::Relaxed);
    }

    /// Turn an undeliverable batch into its per-request error responses,
    /// recording the shed against the shard and each tenant.
    fn send_failure(&self, shard: usize, call: ShardCall, error: ShardSendError) -> Vec<Response> {
        match error {
            ShardSendError::Full => {
                let slot = &self.shards[shard];
                slot.metrics
                    .shed
                    .fetch_add(call.requests.len() as u64, Ordering::Relaxed);
                let retry_after_ms = self
                    .admission
                    .as_ref()
                    .map(|a| a.config.queue_wait_ms)
                    .unwrap_or(1)
                    .max(1);
                call.requests
                    .iter()
                    .map(|request| {
                        if let (Some(admission), Some(tenant)) = (&self.admission, request.tenant())
                        {
                            admission.note_shed(tenant);
                        }
                        Response::overloaded(format!("shard {shard} queue is full"), retry_after_ms)
                    })
                    .collect()
            }
            ShardSendError::Gone => call
                .requests
                .iter()
                .map(|_| Response::fail(ErrorCode::Unavailable, "the shard worker is gone"))
                .collect(),
        }
    }

    /// Server-wide counters, merged over a per-shard census.
    fn stats(&self) -> Response {
        let mut tenants = 0usize;
        for shard in 0..self.shards.len() {
            match self.call_shard(shard, vec![Request::Stats]).pop() {
                Some(Response::Stats { tenants: t, .. }) => tenants += t,
                Some(other) => return other,
                None => return no_shard_response(),
            }
        }
        Response::Stats {
            shards: self.shards.len(),
            tenants,
            requests: self.requests.load(Ordering::Relaxed),
        }
    }

    /// A server-wide health report: per-shard queue/shed/respawn counters kept
    /// engine-side, a tenant/WAL census collected from each shard, and the
    /// tenants admission control has shed from.  A shard that cannot answer
    /// its census contributes zeros rather than failing the report — `health`
    /// must stay useful precisely when shards are struggling.
    fn health(&self) -> Response {
        let mut shards = Vec::with_capacity(self.shards.len());
        for (index, slot) in self.shards.iter().enumerate() {
            let mut health = ShardHealth {
                shard: index,
                queue_depth: slot.metrics.queued.load(Ordering::Relaxed),
                shed: slot.metrics.shed.load(Ordering::Relaxed),
                respawns: slot.metrics.respawns.load(Ordering::Relaxed),
                ..ShardHealth::default()
            };
            if let Some(Response::Health(census)) =
                self.call_shard(index, vec![Request::Health]).pop()
            {
                if let Some(local) = census.shards.first() {
                    health.tenants = local.tenants;
                    health.wal_backlog = local.wal_backlog;
                }
            }
            shards.push(health);
        }
        let degraded = self
            .admission
            .as_ref()
            .map(|a| a.degraded())
            .unwrap_or_default();
        Response::Health(HealthReport { shards, degraded })
    }

    /// Fan a batch of instances out through [`Solver::solve_batch`]; per-instance
    /// failures (malformed windows, zero capacity) come back inline without failing
    /// the sibling instances.
    fn solve_batch(&self, instances: &[BatchInstance], budget: Option<i64>) -> Response {
        let budget = match budget {
            Some(t) if t < 0 => {
                return Response::fail(ErrorCode::Rejected, "the budget must be non-negative")
            }
            Some(t) => Some(Duration::new(t)),
            None => None,
        };
        let parsed: Vec<Result<Instance, String>> = instances
            .iter()
            .enumerate()
            .map(|(i, file)| {
                Instance::try_from_ticks(&file.jobs, file.capacity)
                    .map_err(|e| format!("instance {i}: {e}"))
            })
            .collect();
        let problems: Vec<Problem> = parsed
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|instance| match budget {
                Some(t) => Problem::max_throughput(instance.clone(), t),
                None => Problem::min_busy(instance.clone()),
            })
            .collect();
        let mut solved = self.solver.solve_batch(&problems).into_iter();
        let outcomes: Vec<BatchOutcome> = parsed
            .into_iter()
            .map(|parse| match parse {
                Err(error) => BatchOutcome::Failed(error),
                Ok(instance) => match solved.next().expect("one result per valid instance") {
                    Ok(solution) => {
                        BatchOutcome::Solved(ScheduleReport::from_solution(&instance, &solution))
                    }
                    Err(error) => BatchOutcome::Failed(error.to_string()),
                },
            })
            .collect();
        Response::Batch(outcomes)
    }
}

/// The response for a shard reply that never materialized.
fn no_shard_response() -> Response {
    Response::fail(
        ErrorCode::Unavailable,
        "the shard worker returned no response",
    )
}

/// The shard a tenant name hashes to, shared by request routing and startup
/// recovery (a recovered tenant must land on the shard that will serve it).
fn shard_index(tenant: &str, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    tenant.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// Serialize a scheduler's snapshot for the durable store.
fn snapshot_json(scheduler: &OnlineScheduler) -> String {
    serde_json::to_string(&scheduler.snapshot()).expect("snapshots always serialize")
}

/// A shard's event loop: apply requests to the owned tenants until every queue
/// handle is gone.
///
/// A panic while applying a request is contained to that request: the panicking
/// tenant is dropped from memory (its state can no longer be trusted — its
/// durable state, which holds only acknowledged events, is untouched and will
/// recover on the next start), the caller gets an error response, and the shard
/// keeps serving its other tenants — a wire client must never be able to park a
/// whole shard in the "worker is gone" state.
///
/// A fault plan can additionally kill the whole worker ([`FaultKind::ShardKill`],
/// fired *before* the batch is touched so nothing was applied and the engine's
/// respawn-and-retry is exactly-once safe) or panic a single tenant-scoped
/// request ([`FaultKind::ApplyPanic`], which rides the containment path above).
fn shard_loop(
    rx: mpsc::Receiver<ShardCall>,
    mut state: ShardState,
    metrics: Arc<ShardMetrics>,
    faults: Option<FaultPlan>,
) {
    while let Ok(call) = rx.recv() {
        if let Some(plan) = &faults {
            if plan.fire(FaultKind::ShardKill) {
                std::panic::panic_any(InjectedKill);
            }
        }
        let len = call.requests.len();
        let mut responses = Vec::with_capacity(len);
        for request in call.requests {
            let tenant = request.tenant().map(str::to_string);
            let inject_panic = tenant.is_some()
                && faults
                    .as_ref()
                    .is_some_and(|plan| plan.fire(FaultKind::ApplyPanic));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected apply panic");
                }
                apply(&mut state, request)
            }));
            responses.push(match outcome {
                Ok(response) => response,
                Err(_) => {
                    let detail = match tenant {
                        Some(name) => {
                            state.tenants.remove(&name);
                            format!("; tenant '{name}' was dropped")
                        }
                        None => String::new(),
                    };
                    Response::error(format!("internal error applying the request{detail}"))
                }
            });
        }
        // A caller that hung up (connection dropped mid-request) is not an error.
        let _ = call.reply.send(responses);
        let _ = metrics
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(len))
            });
    }
}

/// Rebuild this shard's tenants from the data directory: for every stored
/// tenant that hashes here, restore the newest snapshot and replay the journal
/// tail through [`apply_event`] — the same path live requests take, so the
/// recovered scheduler is the one an uninterrupted run would hold.  Tenants
/// that fail to recover are skipped with a diagnostic; recovery never aborts
/// the shard.
fn recover_shard(state: &mut ShardState, shard: usize, shards: usize) {
    let Some(shard_store) = state.store.clone() else {
        return;
    };
    let names = match shard_store.store.tenant_names() {
        Ok(names) => names,
        Err(error) => {
            eprintln!("busytime-server: shard {shard}: cannot scan the data directory: {error}");
            return;
        }
    };
    for name in names {
        if shard_index(&name, shards) != shard {
            continue;
        }
        match recover_tenant(&shard_store.store, &name) {
            Ok((tenant, notes)) => {
                for note in notes {
                    eprintln!("busytime-server: tenant '{name}': {note}");
                }
                state.tenants.insert(name, tenant);
            }
            Err(error) => {
                eprintln!("busytime-server: skipping unrecoverable tenant '{name}': {error}");
            }
        }
    }
}

/// Rebuild one tenant: restore its newest parseable snapshot, then replay the
/// journal tail.  A record that cannot be parsed or applied ends the replay at
/// the last good event and the repaired state is compacted to disk, so the
/// broken tail cannot strand later appends; journal-frame corruption was
/// already truncated away by the store's scan.
fn recover_tenant(store: &Store, name: &str) -> std::io::Result<(Tenant, Vec<String>)> {
    let recovered = store.load_tenant(name, |json| -> Result<OnlineScheduler, String> {
        let snapshot: OnlineSnapshot =
            serde_json::from_str(json).map_err(|e| format!("snapshot does not parse: {e}"))?;
        OnlineScheduler::restore(&snapshot).map_err(|e| e.to_string())
    })?;
    let mut tenant = Tenant {
        scheduler: recovered.value,
        trajectory: Vec::new(),
        log: None,
    };
    let mut notes = recovered.notes;
    let mut log = recovered.log;
    let mut anomaly = None;
    /// One replayable journal record: an online event or a defrag pass.
    enum Replay {
        Event(Event),
        Compact(usize),
    }
    for (index, record) in recovered.records.iter().enumerate() {
        let action = std::str::from_utf8(record)
            .map_err(|e| e.to_string())
            .and_then(Request::from_json)
            .and_then(|request| match request {
                Request::Arrive { tenant, id, job } if tenant == name => {
                    checked_window(job.0, job.1)
                        .map(|interval| Replay::Event(Event::arrival(id, interval)))
                }
                Request::Depart { tenant, id } if tenant == name => {
                    Ok(Replay::Event(Event::departure(id)))
                }
                Request::Compact { tenant, budget } if tenant == name => {
                    Ok(Replay::Compact(budget))
                }
                other => Err(format!("unexpected '{}' record", other.op())),
            });
        let failure = match action {
            Ok(Replay::Event(event)) => match apply_event(&mut tenant, &event) {
                Response::Error(error) => Some(error.message),
                _ => None,
            },
            // `compact` is a pure function of the placements it finds, and the
            // replayed scheduler holds exactly the placements the live one held
            // when the record was journaled — so replaying it commits the same
            // moves.  Journal appends are skipped here (`log` is rebuilt below).
            Ok(Replay::Compact(budget)) => {
                let effect = tenant.scheduler.compact(budget);
                if let Some(last) = tenant.trajectory.last_mut() {
                    *last = effect.cost.ticks();
                }
                None
            }
            Err(error) => Some(error),
        };
        if let Some(failure) = failure {
            anomaly = Some(format!(
                "journal record {index} does not replay ({failure}); keeping the {index} \
                 event(s) before it"
            ));
            break;
        }
    }
    if let Some(anomaly) = anomaly {
        // Persist the repaired state: a fresh snapshot supersedes the whole
        // journal including its unreplayable tail.  If even that fails, skip
        // the tenant rather than appending after a tail we could not replay.
        log.compact(&snapshot_json(&tenant.scheduler))?;
        notes.push(anomaly);
    }
    tenant.log = Some(log);
    Ok((tenant, notes))
}

/// Parse and bound-check one wire job window.
///
/// The two bounds exist because the wire is a trust boundary the in-process API is
/// not: an empty window is a caller mistake, and a coordinate outside
/// [`MAX_ABS_TICK`] would let a single request overflow the `i64` length/cost
/// arithmetic downstream (wrapping the tenant's accounting in release builds,
/// panicking the shard in debug builds).
fn checked_window(start: i64, end: i64) -> Result<Interval, String> {
    if start.checked_abs().is_none_or(|s| s > MAX_ABS_TICK)
        || end.checked_abs().is_none_or(|e| e > MAX_ABS_TICK)
    {
        return Err(format!(
            "job window [{start}, {end}) is out of range (ticks must stay within ±{MAX_ABS_TICK})"
        ));
    }
    Interval::try_new(Time::new(start), Time::new(end))
        .map_err(|_| format!("job window [{start}, {end}) is empty"))
}

/// The error a durability-only operation gets on an in-memory registry.
const DURABILITY_DISABLED: &str = "durability is not enabled (start the server with --data-dir)";

/// Apply one tenant-scoped request to a shard's state.
fn apply(state: &mut ShardState, request: Request) -> Response {
    match request {
        Request::Open {
            tenant,
            capacity,
            policy,
        } => {
            let policy = match policy.as_deref().map(OnlinePolicy::parse) {
                None => OnlinePolicy::FirstFit,
                Some(Ok(policy)) => policy,
                Some(Err(error)) => return Response::fail(ErrorCode::Rejected, error),
            };
            if capacity > MAX_CAPACITY {
                return Response::fail(
                    ErrorCode::Rejected,
                    format!("capacity {capacity} exceeds the server limit of {MAX_CAPACITY}"),
                );
            }
            if state.tenants.contains_key(&tenant) {
                return Response::fail(
                    ErrorCode::AlreadyOpen,
                    format!("tenant '{tenant}' is already open"),
                );
            }
            match OnlineScheduler::new(capacity, policy) {
                Ok(scheduler) => insert_tenant(state, tenant, scheduler),
                Err(error) => Response::fail(ErrorCode::Rejected, error.to_string()),
            }
        }
        Request::Arrive { tenant, id, job } => {
            let interval = match checked_window(job.0, job.1) {
                Ok(interval) => interval,
                Err(error) => return Response::fail(ErrorCode::Rejected, error),
            };
            apply_logged(state, &tenant, Event::arrival(id, interval))
        }
        Request::Depart { tenant, id } => apply_logged(state, &tenant, Event::departure(id)),
        Request::Query { tenant } => with_tenant(&mut state.tenants, &tenant, |t| {
            Response::Query(SimulationReport::from_scheduler(
                &t.scheduler,
                t.trajectory.clone(),
            ))
        }),
        Request::Snapshot { tenant } => with_tenant(&mut state.tenants, &tenant, |t| {
            Response::Snapshot(t.scheduler.snapshot())
        }),
        Request::Restore { tenant, snapshot } => {
            // The same wire bounds as `open`/`arrive`: a snapshot is caller-supplied
            // data, not something this server necessarily produced.
            if snapshot.capacity > MAX_CAPACITY {
                return Response::fail(
                    ErrorCode::Rejected,
                    format!(
                        "snapshot capacity {} exceeds the server limit of {MAX_CAPACITY}",
                        snapshot.capacity
                    ),
                );
            }
            if let Some(job) = snapshot
                .jobs
                .iter()
                .find(|job| checked_window(job.start, job.end).is_err())
            {
                return Response::fail(
                    ErrorCode::Rejected,
                    format!(
                        "snapshot job {} has an out-of-range or empty window [{}, {})",
                        job.id, job.start, job.end
                    ),
                );
            }
            match OnlineScheduler::restore(&snapshot) {
                Ok(scheduler) => insert_tenant(state, tenant, scheduler),
                Err(error) => Response::fail(ErrorCode::Rejected, error.to_string()),
            }
        }
        Request::Close { tenant } => {
            if !state.tenants.contains_key(&tenant) {
                return Response::fail(
                    ErrorCode::UnknownTenant,
                    format!("unknown tenant '{tenant}'"),
                );
            }
            // Disk first: if the durable state cannot be removed, the tenant
            // stays open rather than resurrecting on the next start.
            if let Some(shard_store) = &state.store {
                if let Err(error) = shard_store.store.remove_tenant(&tenant) {
                    return Response::error(format!(
                        "cannot remove tenant '{tenant}' from the data directory: {error}"
                    ));
                }
            }
            state.tenants.remove(&tenant);
            Response::Ok
        }
        Request::Persist { tenant } => with_tenant(&mut state.tenants, &tenant, |t| {
            let json = snapshot_json(&t.scheduler);
            match t.log.as_mut() {
                Some(log) => match log.compact(&json) {
                    Ok(()) => Response::Wal(log.stats()),
                    Err(error) => {
                        Response::error(format!("compaction failed for tenant '{tenant}': {error}"))
                    }
                },
                None => Response::fail(ErrorCode::Unsupported, DURABILITY_DISABLED),
            }
        }),
        Request::WalStats { tenant } => {
            with_tenant(&mut state.tenants, &tenant, |t| match t.log.as_mut() {
                Some(log) => Response::Wal(log.stats()),
                None => Response::fail(ErrorCode::Unsupported, DURABILITY_DISABLED),
            })
        }
        // A shard-local census used by `Engine::stats`; `shards`/`requests` are
        // filled in by the merge.
        Request::Stats => Response::Stats {
            shards: 1,
            tenants: state.tenants.len(),
            requests: 0,
        },
        // A shard-local census used by `Engine::health`: tenant count and the
        // summed un-synced WAL backlog; the queue/shed/respawn figures are
        // engine-side and merged there.
        Request::Health => Response::Health(HealthReport {
            shards: vec![ShardHealth {
                shard: 0,
                tenants: state.tenants.len(),
                wal_backlog: state
                    .tenants
                    .values()
                    .map(|t| t.log.as_ref().map_or(0, |log| log.pending() as u64))
                    .sum::<u64>(),
                ..ShardHealth::default()
            }],
            degraded: Vec::new(),
        }),
        Request::Compact { tenant, budget } => {
            let Some(t) = state.tenants.get_mut(&tenant) else {
                return Response::fail(
                    ErrorCode::UnknownTenant,
                    format!("unknown tenant '{tenant}'"),
                );
            };
            match compact_tenant(t, &tenant, budget) {
                Ok(effect) => Response::Compact {
                    moves: effect.moves,
                    cost_delta: effect.cost_delta,
                    cost: effect.cost.ticks(),
                },
                Err(error) => {
                    state.tenants.remove(&tenant);
                    Response::error(error)
                }
            }
        }
        Request::Batch { .. } => {
            Response::fail(ErrorCode::Rejected, "batch requests are not tenant-scoped")
        }
    }
}

/// Run one budgeted defragmentation pass on a tenant.
///
/// Compaction is not a new event — it reprices the placements the latest event
/// left behind — so it *amends* the tenant's last trajectory point to the
/// post-compaction cost instead of appending one.  A pass that committed at
/// least one move is journaled through the same mutation path events take
/// (`compact` replays deterministically against the same placements); a no-op
/// pass is the identity, so skipping its record keeps replay exact.  A failed
/// journal append comes back as the message the caller must drop the tenant
/// with, exactly like a failed event append — never acknowledge a mutation
/// that would vanish on restart.
fn compact_tenant(t: &mut Tenant, tenant: &str, budget: usize) -> Result<CompactEffect, String> {
    let effect = t.scheduler.compact(budget);
    if effect.moves > 0 {
        if let Some(last) = t.trajectory.last_mut() {
            *last = effect.cost.ticks();
        }
        if let Some(log) = t.log.as_mut() {
            let record = Request::Compact {
                tenant: tenant.to_string(),
                budget,
            }
            .to_json();
            if let Err(error) = log.append(record.as_bytes()) {
                return Err(format!(
                    "cannot journal the compaction for tenant '{tenant}': {error}; the tenant \
                     was dropped (its durable state holds every previously acknowledged event)"
                ));
            }
        }
    }
    Ok(effect)
}

/// Insert a freshly built tenant (`open`/`restore`), writing its baseline
/// snapshot to the store first — the ack means "this tenant survives a crash".
/// A restore over an existing tenant only replaces the in-memory state once
/// the new generation is durably begun.
fn insert_tenant(state: &mut ShardState, tenant: String, scheduler: OnlineScheduler) -> Response {
    let log = match &state.store {
        Some(shard_store) => {
            match shard_store
                .store
                .begin_tenant(&tenant, &snapshot_json(&scheduler))
            {
                Ok(log) => Some(log),
                Err(error) => {
                    return Response::error(format!("cannot persist tenant '{tenant}': {error}"));
                }
            }
        }
        None => None,
    };
    state.tenants.insert(
        tenant,
        Tenant {
            scheduler,
            trajectory: Vec::new(),
            log,
        },
    );
    Response::Ok
}

/// Apply one event to a tenant and, on a durable registry, journal it before
/// acknowledging.  If the journal write fails the tenant is dropped from
/// memory (its disk state holds exactly the previously acknowledged events)
/// rather than acknowledging an event that would vanish on restart.  After a
/// successful append, compact inline once the journal crosses the threshold —
/// at most one compaction per request keeps the shard's tail latency bounded.
fn apply_logged(state: &mut ShardState, tenant: &str, event: Event) -> Response {
    let Some(t) = state.tenants.get_mut(tenant) else {
        return Response::fail(
            ErrorCode::UnknownTenant,
            format!("unknown tenant '{tenant}'"),
        );
    };
    let response = apply_event(t, &event);
    if !response.is_ok() {
        return response;
    }
    if let Some(log) = t.log.as_mut() {
        let record = Request::event_record_json(tenant, &event);
        if let Err(error) = log.append(record.as_bytes()) {
            state.tenants.remove(tenant);
            return Response::error(format!(
                "cannot journal the event for tenant '{tenant}': {error}; the tenant was \
                 dropped (its durable state holds every previously acknowledged event)"
            ));
        }
    }
    // Background defragmentation (`serve --defrag-budget K`): one budgeted
    // pass rides behind every journaled event, ordered event-record then
    // compact-record so replay interleaves them exactly as they ran.  The
    // event acknowledgement keeps the pre-compaction cost — compaction happens
    // *between* events; `query` sees the amended trajectory.
    if let Some(budget) = state.defrag_budget {
        if let Err(error) = compact_tenant(t, tenant, budget) {
            state.tenants.remove(tenant);
            return Response::error(error);
        }
    }
    if let Some(log) = t.log.as_mut() {
        let threshold = state
            .store
            .as_ref()
            .map_or(u64::MAX, |s| s.compact_threshold);
        if log.stats().log_records >= threshold {
            // Best effort: a failed compaction leaves the current generation
            // canonical and the journal simply keeps growing until a later
            // attempt succeeds.
            if let Err(error) = log.compact(&snapshot_json(&t.scheduler)) {
                eprintln!("busytime-server: compaction failed for tenant '{tenant}': {error}");
            }
        }
    }
    response
}

/// Run `f` on a tenant, or report it unknown.
fn with_tenant(
    tenants: &mut HashMap<String, Tenant>,
    tenant: &str,
    f: impl FnOnce(&mut Tenant) -> Response,
) -> Response {
    match tenants.get_mut(tenant) {
        Some(t) => f(t),
        None => Response::fail(
            ErrorCode::UnknownTenant,
            format!("unknown tenant '{tenant}'"),
        ),
    }
}

/// Apply one online event to a tenant, recording the trajectory point (bounded to
/// the [`TRAJECTORY_WINDOW`]: when the buffer reaches twice the window, the oldest
/// half is dropped in one step, so the amortized per-event cost stays O(1)).
fn apply_event(tenant: &mut Tenant, event: &Event) -> Response {
    match tenant.scheduler.apply(event) {
        Ok(effect) => {
            if tenant.trajectory.len() >= 2 * TRAJECTORY_WINDOW {
                tenant.trajectory.drain(..TRAJECTORY_WINDOW);
            }
            tenant.trajectory.push(effect.cost.ticks());
            Response::Event {
                machine: effect.machine,
                cost_delta: effect.cost_delta,
                cost: effect.cost.ticks(),
            }
        }
        Err(error) => Response::fail(ErrorCode::Rejected, error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrive(tenant: &str, id: u64, job: (i64, i64)) -> Request {
        Request::Arrive {
            tenant: tenant.into(),
            id,
            job,
        }
    }

    #[test]
    fn tenant_lifecycle_through_the_engine() {
        let registry = Registry::new(2);
        let engine = registry.engine();
        assert!(engine
            .call(Request::Open {
                tenant: "a".into(),
                capacity: 2,
                policy: None,
            })
            .is_ok());
        // Re-opening is an error; the original state is untouched.
        assert!(!engine
            .call(Request::Open {
                tenant: "a".into(),
                capacity: 9,
                policy: None,
            })
            .is_ok());

        let r = engine.call(arrive("a", 1, (0, 10)));
        let Response::Event {
            machine,
            cost_delta,
            cost,
        } = r
        else {
            panic!("expected an event response, got {r:?}");
        };
        assert_eq!((machine, cost_delta, cost), (0, 10, 10));
        engine.call(arrive("a", 2, (4, 12)));
        let r = engine.call(Request::Depart {
            tenant: "a".into(),
            id: 1,
        });
        assert!(r.is_ok());

        let Response::Query(report) = engine.call(Request::Query { tenant: "a".into() }) else {
            panic!("expected a query response");
        };
        assert_eq!(report.arrivals, 2);
        assert_eq!(report.departures, 1);
        assert_eq!(report.cost_trajectory, vec![10, 12, 8]);
        assert_eq!(report.live_jobs, 1);

        assert!(engine.call(Request::Close { tenant: "a".into() }).is_ok());
        assert!(!engine.call(Request::Query { tenant: "a".into() }).is_ok());
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn errors_name_the_problem() {
        let registry = Registry::new(1);
        let engine = registry.engine();
        let Response::Error(e) = engine.call(Request::Query {
            tenant: "ghost".into(),
        }) else {
            panic!("expected an error");
        };
        assert!(e.message.contains("ghost"), "{e}");
        assert_eq!(e.code, ErrorCode::UnknownTenant);
        assert!(engine
            .call(Request::Open {
                tenant: "t".into(),
                capacity: 1,
                policy: None,
            })
            .is_ok());
        let Response::Error(e) = engine.call(arrive("t", 1, (5, 5))) else {
            panic!("expected an error");
        };
        assert!(e.message.contains("[5, 5)"), "{e}");
        assert_eq!(e.code, ErrorCode::Rejected);
        let Response::Error(e) = engine.call(Request::Depart {
            tenant: "t".into(),
            id: 42,
        }) else {
            panic!("expected an error");
        };
        assert!(e.message.contains("42"), "{e}");
        // Reopening an open tenant gets the dedicated code clients branch on.
        let Response::Error(e) = engine.call(Request::Open {
            tenant: "t".into(),
            capacity: 1,
            policy: None,
        }) else {
            panic!("expected an error");
        };
        assert_eq!(e.code, ErrorCode::AlreadyOpen);
        // An unknown policy is rejected at open.
        let Response::Error(e) = engine.call(Request::Open {
            tenant: "u".into(),
            capacity: 1,
            policy: Some("bogus".into()),
        }) else {
            panic!("expected an error");
        };
        assert!(e.message.contains("bogus"), "{e}");
        assert_eq!(e.code, ErrorCode::Rejected);
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn snapshot_restore_moves_tenants() {
        let registry = Registry::new(2);
        let engine = registry.engine();
        engine.call(Request::Open {
            tenant: "src".into(),
            capacity: 1,
            policy: Some("best-fit".into()),
        });
        engine.call(arrive("src", 1, (0, 10)));
        engine.call(arrive("src", 2, (5, 15)));
        let Response::Snapshot(snapshot) = engine.call(Request::Snapshot {
            tenant: "src".into(),
        }) else {
            panic!("expected a snapshot");
        };
        // Restore under a *different* tenant name (possibly another shard).
        assert!(engine
            .call(Request::Restore {
                tenant: "dst".into(),
                snapshot,
            })
            .is_ok());
        let Response::Query(src) = engine.call(Request::Query {
            tenant: "src".into(),
        }) else {
            panic!()
        };
        let Response::Query(dst) = engine.call(Request::Query {
            tenant: "dst".into(),
        }) else {
            panic!()
        };
        assert_eq!(src.final_cost, dst.final_cost);
        assert_eq!(src.machine_groups, dst.machine_groups);
        assert_eq!(src.arrivals, dst.arrivals);
        // The trajectory restarts at the restore point by design.
        assert!(dst.cost_trajectory.is_empty());
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn batch_and_stats() {
        let registry = Registry::new(3);
        let engine = registry.engine();
        engine.call(Request::Open {
            tenant: "a".into(),
            capacity: 1,
            policy: None,
        });
        engine.call(Request::Open {
            tenant: "b".into(),
            capacity: 1,
            policy: None,
        });
        let Response::Batch(outcomes) = engine.call(Request::Batch {
            instances: vec![
                BatchInstance {
                    capacity: 2,
                    jobs: vec![(0, 10), (2, 12)],
                },
                BatchInstance {
                    capacity: 0,
                    jobs: vec![(0, 1)],
                },
            ],
            budget: None,
        }) else {
            panic!("expected a batch response");
        };
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(&outcomes[0], BatchOutcome::Solved(r) if r.scheduled_jobs == 2));
        assert!(matches!(&outcomes[1], BatchOutcome::Failed(e) if e.contains("instance 1")));
        assert!(matches!(
            engine.call(Request::Batch {
                instances: vec![],
                budget: Some(-3),
            }),
            Response::Error(_)
        ));

        let Response::Stats {
            shards,
            tenants,
            requests,
        } = engine.call(Request::Stats)
        else {
            panic!("expected stats");
        };
        assert_eq!(shards, 3);
        assert_eq!(tenants, 2);
        assert!(requests >= 4);
        drop(engine);
        registry.shutdown();
    }

    #[test]
    fn wire_bounds_reject_hostile_requests() {
        let mut tenants = ShardState::in_memory();
        // A capacity that would make the first arrival allocate `capacity` thread
        // sets is refused at open...
        let Response::Error(e) = apply(
            &mut tenants,
            Request::Open {
                tenant: "t".into(),
                capacity: MAX_CAPACITY + 1,
                policy: None,
            },
        ) else {
            panic!("expected an error");
        };
        assert!(e.message.contains("server limit"), "{e}");
        // ...and at restore.
        let mut snapshot = OnlineScheduler::new(1, OnlinePolicy::FirstFit)
            .unwrap()
            .snapshot();
        snapshot.capacity = MAX_CAPACITY + 1;
        let Response::Error(e) = apply(
            &mut tenants,
            Request::Restore {
                tenant: "t".into(),
                snapshot,
            },
        ) else {
            panic!("expected an error");
        };
        assert!(e.message.contains("server limit"), "{e}");

        // A job window wide enough to overflow i64 length arithmetic is refused
        // before it reaches the scheduler.
        apply(
            &mut tenants,
            Request::Open {
                tenant: "t".into(),
                capacity: 1,
                policy: None,
            },
        );
        for (s, e) in [
            (i64::MIN, i64::MAX),
            (-(MAX_ABS_TICK + 1), 0),
            (0, MAX_ABS_TICK + 1),
        ] {
            let Response::Error(error) = apply(&mut tenants, arrive("t", 1, (s, e))) else {
                panic!("expected an error for [{s}, {e})");
            };
            assert!(error.message.contains("out of range"), "{error}");
        }
        // A snapshot smuggling such a window is refused too.
        let mut scheduler = OnlineScheduler::new(1, OnlinePolicy::FirstFit).unwrap();
        scheduler
            .apply(&Event::arrival(1, Interval::from_ticks(0, 5)))
            .unwrap();
        let mut snapshot = scheduler.snapshot();
        snapshot.jobs[0].start = i64::MIN;
        let Response::Error(error) = apply(
            &mut tenants,
            Request::Restore {
                tenant: "u".into(),
                snapshot,
            },
        ) else {
            panic!("expected an error");
        };
        assert!(error.message.contains("out-of-range"), "{error}");
        // In-range requests still flow.
        assert!(apply(&mut tenants, arrive("t", 1, (0, MAX_ABS_TICK))).is_ok());
    }

    #[test]
    fn trajectory_is_bounded_but_counters_are_not() {
        // Drive a tenant far past the retention window (map-level, no channels):
        // memory stays O(window) while the true event totals keep counting.
        let mut tenants = ShardState::in_memory();
        apply(
            &mut tenants,
            Request::Open {
                tenant: "t".into(),
                capacity: 1,
                policy: None,
            },
        );
        let rounds = TRAJECTORY_WINDOW + 5;
        for i in 0..rounds as u64 {
            let s = i as i64;
            assert!(apply(&mut tenants, arrive("t", i, (s, s + 1))).is_ok());
            assert!(apply(
                &mut tenants,
                Request::Depart {
                    tenant: "t".into(),
                    id: i,
                },
            )
            .is_ok());
        }
        let tenant = &tenants.tenants["t"];
        assert!(tenant.trajectory.len() <= 2 * TRAJECTORY_WINDOW);
        assert!(tenant.trajectory.len() >= TRAJECTORY_WINDOW);
        let Response::Query(report) = apply(&mut tenants, Request::Query { tenant: "t".into() })
        else {
            panic!("expected a query response");
        };
        assert_eq!(report.events, 2 * rounds);
        assert_eq!(report.arrivals, rounds);
        assert_eq!(report.departures, rounds);
        assert_eq!(
            report.cost_trajectory.len(),
            tenants.tenants["t"].trajectory.len()
        );
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let registry = Registry::new(4);
        let engine = registry.engine();
        for name in ["a", "b", "c", "tenant-42", ""] {
            let s = engine.shard_for(name);
            assert!(s < 4);
            assert_eq!(s, engine.shard_for(name));
        }
        drop(engine);
        registry.shutdown();
    }
}
