//! Deterministic fault planning for chaos tests.
//!
//! A [`FaultPlan`] is a seeded schedule of failure points: "the 3rd and 17th
//! WAL append fail", "the 2nd shard batch panics", "drop the connection after
//! the 40th flushed response".  Each fault kind keeps its own atomic
//! occurrence counter, so the same seed replays the byte-identical failure
//! schedule on every run regardless of thread interleaving *within a kind*.
//! Servers built without a plan pay one `Option` check per site and nothing
//! else — the hooks are compiled in but inert.
//!
//! Points are drawn without replacement from `1..=horizon` by a dependency-
//! free xorshift64* generator, one independent stream per kind (the kind's
//! salt is folded into the seed), so adding faults of one kind never shifts
//! another kind's schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of fault a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A WAL record write fails with an injected I/O error.
    WalAppend,
    /// A WAL fsync fails with an injected I/O error.
    WalSync,
    /// Applying a request on its shard panics (the tenant is dropped, the
    /// shard survives).
    ApplyPanic,
    /// The whole shard worker dies before touching its batch (and is
    /// respawned, its tenants recovered from the WAL).
    ShardKill,
    /// The server drops the connection instead of flushing responses.
    ConnDrop,
    /// The server stalls briefly before flushing responses.
    SlowWrite,
}

impl FaultKind {
    /// Per-kind salt folded into the plan seed so each kind draws an
    /// independent point stream.
    fn salt(self) -> u64 {
        match self {
            FaultKind::WalAppend => 0x5741_4c41,
            FaultKind::WalSync => 0x5741_4c53,
            FaultKind::ApplyPanic => 0x4150_5050,
            FaultKind::ShardKill => 0x534b_494c,
            FaultKind::ConnDrop => 0x434f_4e44,
            FaultKind::SlowWrite => 0x534c_4f57,
        }
    }

    const ALL: [FaultKind; 6] = [
        FaultKind::WalAppend,
        FaultKind::WalSync,
        FaultKind::ApplyPanic,
        FaultKind::ShardKill,
        FaultKind::ConnDrop,
        FaultKind::SlowWrite,
    ];
}

/// How many faults of each kind to plan, and over what horizon.
///
/// `horizon` is the occurrence range points are drawn from: with
/// `wal_appends: 2, horizon: 100`, two of the first hundred WAL appends fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for the point-drawing generator; same seed = same schedule.
    pub seed: u64,
    /// WAL append failures to plan.
    pub wal_appends: usize,
    /// WAL fsync failures to plan.
    pub wal_syncs: usize,
    /// Apply panics to plan.
    pub apply_panics: usize,
    /// Shard worker deaths to plan.
    pub shard_kills: usize,
    /// Connection drops to plan.
    pub conn_drops: usize,
    /// Slow response flushes to plan.
    pub slow_writes: usize,
    /// Occurrence range `1..=horizon` the points are drawn from.
    pub horizon: u64,
}

impl FaultSpec {
    /// A spec with the given seed and no faults planned (each count opts in).
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            wal_appends: 0,
            wal_syncs: 0,
            apply_panics: 0,
            shard_kills: 0,
            conn_drops: 0,
            slow_writes: 0,
            horizon: 1000,
        }
    }

    fn count(&self, kind: FaultKind) -> usize {
        match kind {
            FaultKind::WalAppend => self.wal_appends,
            FaultKind::WalSync => self.wal_syncs,
            FaultKind::ApplyPanic => self.apply_panics,
            FaultKind::ShardKill => self.shard_kills,
            FaultKind::ConnDrop => self.conn_drops,
            FaultKind::SlowWrite => self.slow_writes,
        }
    }
}

/// xorshift64*: tiny, dependency-free, good enough to scatter fault points.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// One fault kind's planned occurrence points plus its live counter.
#[derive(Debug)]
struct Schedule {
    /// Sorted, deduplicated 1-based occurrence numbers that fail.
    points: Vec<u64>,
    /// Occurrences seen so far.
    counter: AtomicU64,
    /// Planned faults that have actually fired.
    fired: AtomicU64,
}

impl Schedule {
    fn draw(seed: u64, kind: FaultKind, count: usize, horizon: u64) -> Schedule {
        let mut state = seed ^ kind.salt() ^ 0x9e37_79b9_7f4a_7c15;
        // The generator must never be seeded to zero (xorshift fixpoint).
        if state == 0 {
            state = 0x6a09_e667_f3bc_c908;
        }
        let horizon = horizon.max(1);
        let mut points = Vec::with_capacity(count);
        // Draw without replacement; horizons smaller than `count` saturate.
        while points.len() < count.min(horizon as usize) {
            let point = xorshift64star(&mut state) % horizon + 1;
            if !points.contains(&point) {
                points.push(point);
            }
        }
        points.sort_unstable();
        Schedule {
            points,
            counter: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }

    /// Count one occurrence; `true` when this occurrence is a planned fault.
    fn fire(&self) -> bool {
        let occurrence = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let hit = self.points.binary_search(&occurrence).is_ok();
        if hit {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

/// A compiled, shareable fault schedule.  Cloning is cheap (an `Arc`); all
/// clones share the occurrence counters, so a plan threaded into the engine,
/// the shards and the durability layer counts globally.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<[Schedule; 6]>,
}

impl FaultPlan {
    /// Compile a spec into per-kind schedules.
    pub fn new(spec: FaultSpec) -> Self {
        let schedules = FaultKind::ALL
            .map(|kind| Schedule::draw(spec.seed, kind, spec.count(kind), spec.horizon));
        FaultPlan {
            inner: Arc::new(schedules),
        }
    }

    fn schedule(&self, kind: FaultKind) -> &Schedule {
        &self.inner[FaultKind::ALL.iter().position(|k| *k == kind).unwrap()]
    }

    /// Count one occurrence of `kind`; `true` when the plan says it fails.
    pub fn fire(&self, kind: FaultKind) -> bool {
        self.schedule(kind).fire()
    }

    /// Planned faults of `kind` that have fired so far.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.schedule(kind).fired.load(Ordering::Relaxed)
    }

    /// Occurrences of `kind` seen so far (fired or not).
    pub fn occurrences(&self, kind: FaultKind) -> u64 {
        self.schedule(kind).counter.load(Ordering::Relaxed)
    }

    /// Total planned faults of `kind`.
    pub fn planned(&self, kind: FaultKind) -> u64 {
        self.schedule(kind).points.len() as u64
    }
}

/// Panic payload for an injected shard death, so `Registry::shutdown` can
/// tell a planned kill from a real bug when joining workers.
#[derive(Debug)]
pub struct InjectedKill;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_same_seed_replays_the_same_schedule() {
        let spec = FaultSpec {
            wal_appends: 5,
            wal_syncs: 3,
            apply_panics: 2,
            shard_kills: 1,
            conn_drops: 4,
            slow_writes: 2,
            horizon: 50,
            ..FaultSpec::quiet(2012)
        };
        let a = FaultPlan::new(spec);
        let b = FaultPlan::new(spec);
        for kind in FaultKind::ALL {
            let hits_a: Vec<bool> = (0..60).map(|_| a.fire(kind)).collect();
            let hits_b: Vec<bool> = (0..60).map(|_| b.fire(kind)).collect();
            assert_eq!(hits_a, hits_b, "{kind:?} schedules diverged");
            assert_eq!(
                hits_a.iter().filter(|h| **h).count() as u64,
                a.planned(kind),
                "{kind:?}: every planned point within the horizon must fire"
            );
        }
    }

    #[test]
    fn kinds_draw_independent_streams() {
        let spec = FaultSpec {
            wal_appends: 10,
            wal_syncs: 10,
            horizon: 1000,
            ..FaultSpec::quiet(7)
        };
        let plan = FaultPlan::new(spec);
        let appends: Vec<u64> = plan.schedule(FaultKind::WalAppend).points.clone();
        let syncs: Vec<u64> = plan.schedule(FaultKind::WalSync).points.clone();
        assert_ne!(appends, syncs, "independent streams should differ");
    }

    #[test]
    fn a_quiet_plan_never_fires() {
        let plan = FaultPlan::new(FaultSpec::quiet(99));
        for kind in FaultKind::ALL {
            for _ in 0..100 {
                assert!(!plan.fire(kind));
            }
            assert_eq!(plan.fired(kind), 0);
            assert_eq!(plan.occurrences(kind), 100);
        }
    }

    #[test]
    fn clones_share_counters() {
        let spec = FaultSpec {
            wal_appends: 1,
            horizon: 2,
            ..FaultSpec::quiet(1)
        };
        let plan = FaultPlan::new(spec);
        let clone = plan.clone();
        let fired =
            plan.fire(FaultKind::WalAppend) as u32 + clone.fire(FaultKind::WalAppend) as u32;
        assert_eq!(fired, 1, "exactly one of the first two occurrences fails");
        assert_eq!(plan.occurrences(FaultKind::WalAppend), 2);
    }

    #[test]
    fn saturated_horizons_fail_every_occurrence() {
        let spec = FaultSpec {
            shard_kills: 10,
            horizon: 3,
            ..FaultSpec::quiet(5)
        };
        let plan = FaultPlan::new(spec);
        assert_eq!(plan.planned(FaultKind::ShardKill), 3);
        assert!(plan.fire(FaultKind::ShardKill));
        assert!(plan.fire(FaultKind::ShardKill));
        assert!(plan.fire(FaultKind::ShardKill));
        assert!(
            !plan.fire(FaultKind::ShardKill),
            "past the horizon is quiet"
        );
    }
}
