//! Deterministic I/O fault injection for chaos testing.
//!
//! A [`FaultInjector`] is a hook consulted immediately before each real disk
//! operation on a journal.  Production servers never install one, so the hot
//! path pays a single `Option` check; chaos tests install a seeded schedule
//! and replay byte-identical failure sequences.  The hook *replaces* the I/O
//! with an error when it fires — the underlying write or fsync is never
//! issued, so an injected failure leaves the file exactly as it was.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Where in the journal's I/O path a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPoint {
    /// Before a record's `write(2)` in [`crate::Journal::append`].
    Append,
    /// Before the `fsync` in [`crate::Journal::sync`] (only consulted when
    /// there are pending appends to sync).
    Sync,
}

/// A shared, injectable I/O fault hook: returns `Some(error)` to make the next
/// operation at `point` fail, `None` to let it through.
#[derive(Clone)]
pub struct FaultInjector(Arc<dyn Fn(IoPoint) -> Option<io::Error> + Send + Sync>);

impl FaultInjector {
    /// Wrap a decision function.  The function is called once per I/O
    /// operation and must be cheap and thread-safe.
    pub fn new(decide: impl Fn(IoPoint) -> Option<io::Error> + Send + Sync + 'static) -> Self {
        FaultInjector(Arc::new(decide))
    }

    /// Consult the hook: `Err` when a fault fires at this point.
    pub fn check(&self, point: IoPoint) -> io::Result<()> {
        match (self.0)(point) {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FaultInjector(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn the_hook_fires_where_its_decision_says() {
        let appends = Arc::new(AtomicU64::new(0));
        let seen = appends.clone();
        let injector = FaultInjector::new(move |point| {
            if point == IoPoint::Append && seen.fetch_add(1, Ordering::Relaxed) == 1 {
                Some(io::Error::other("injected"))
            } else {
                None
            }
        });
        assert!(injector.check(IoPoint::Append).is_ok());
        let err = injector.check(IoPoint::Append).unwrap_err();
        assert_eq!(err.to_string(), "injected");
        assert!(injector.check(IoPoint::Sync).is_ok());
    }
}
