//! Generation-based per-tenant persistence on top of the journal.
//!
//! Each tenant owns one directory under the store root (its name
//! percent-encoded to stay filesystem-safe), holding exactly one live
//! *generation*: a `snapshot.<gen>.json` baseline plus a `journal.<gen>.log`
//! tail of events applied since that baseline.  Compaction writes the next
//! generation's snapshot atomically (temp file + rename), starts an empty
//! journal, and deletes the superseded generation; recovery picks the
//! highest generation whose snapshot restores and replays its journal tail.

use std::fmt::Display;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::frame::{scan_journal, Corruption, Journal};
use crate::inject::FaultInjector;

/// Encode a tenant name into a filesystem-safe directory name.  ASCII
/// alphanumerics, `-` and `_` pass through; every other byte becomes `%XX`.
pub fn encode_tenant_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(byte as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Decode a directory name produced by [`encode_tenant_name`].  Returns
/// `None` for names that are not valid encodings (stray files in the data
/// directory are skipped, not fatal).
pub fn decode_tenant_name(encoded: &str) -> Option<String> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

/// Path of a generation's snapshot file inside a tenant directory.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}.json"))
}

/// Path of a generation's journal file inside a tenant directory.
pub fn journal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("journal.{generation}.log"))
}

/// Every generation with a snapshot file present in `dir`, sorted descending
/// (newest first).  A missing directory lists as empty.
pub fn list_generations(dir: &Path) -> io::Result<Vec<u64>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut generations = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name
            .strip_prefix("snapshot.")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|gen| gen.parse::<u64>().ok())
        {
            generations.push(gen);
        }
    }
    generations.sort_unstable_by(|a, b| b.cmp(a));
    Ok(generations)
}

/// Stage `contents` for an atomic write: the bytes land fsynced in a temp
/// file next to `path`, to be committed later by [`commit_staged`].
fn stage_write(path: &Path, contents: &[u8]) -> io::Result<PathBuf> {
    let tmp = path.with_extension("tmp");
    let mut file = fs::File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_data()?;
    Ok(tmp)
}

/// Commit a staged write: rename the temp file over the destination, so a
/// crash leaves either the old file or the new one, never a torn hybrid.
fn commit_staged(tmp: &Path, path: &Path) -> io::Result<()> {
    fs::rename(tmp, path)?;
    // Persist the rename itself; failures here are ignored on filesystems
    // that refuse to fsync a directory handle.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Delete every snapshot/journal/temp file in `dir` that does not belong to
/// generation `keep`.  Best effort: removal errors are ignored (a leftover
/// stale file is harmless once the live generation is newer).
fn remove_other_generations(dir: &Path, keep: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_snapshot = name
            .strip_prefix("snapshot.")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|gen| gen.parse::<u64>().ok())
            .is_some_and(|gen| gen != keep);
        let stale_journal = name
            .strip_prefix("journal.")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|gen| gen.parse::<u64>().ok())
            .is_some_and(|gen| gen != keep);
        let temp = name.ends_with(".tmp");
        if stale_snapshot || stale_journal || temp {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Live write-ahead state for one tenant: the current generation's snapshot
/// baseline plus its append-only journal.
#[derive(Debug)]
pub struct TenantLog {
    dir: PathBuf,
    generation: u64,
    snapshot_bytes: u64,
    journal: Journal,
    fsync_batch: usize,
    /// Chaos hook the journal (and every journal compaction replaces it with)
    /// consults before disk I/O; `None` in production.
    injector: Option<FaultInjector>,
}

/// Counters describing a tenant's on-disk write-ahead state, as reported by
/// the `wal_stats` server operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// The live generation number (bumped by every snapshot/compaction).
    pub generation: u64,
    /// Records in the journal tail since the last snapshot.
    pub log_records: u64,
    /// Journal size in bytes, framing included.
    pub log_bytes: u64,
    /// Size of the baseline snapshot in bytes.
    pub snapshot_bytes: u64,
}

impl TenantLog {
    /// Start a generation: atomically write its snapshot, create an empty
    /// journal, and delete superseded generations.  Used for tenant creation
    /// (`open`/`restore`) and as the back half of compaction.
    ///
    /// The snapshot rename is the commit point and runs *last*: any earlier
    /// failure (or a crash) leaves at most stray `.tmp`/journal files while
    /// the previous generation stays canonical, so a failed `begin` never
    /// strands events appended to the previous generation's journal.
    pub fn begin(
        dir: impl Into<PathBuf>,
        generation: u64,
        snapshot_json: &str,
        fsync_batch: usize,
    ) -> io::Result<TenantLog> {
        TenantLog::begin_with(dir, generation, snapshot_json, fsync_batch, None)
    }

    /// [`TenantLog::begin`] with a chaos hook installed on the new journal
    /// (and inherited by every later compaction).
    pub fn begin_with(
        dir: impl Into<PathBuf>,
        generation: u64,
        snapshot_json: &str,
        fsync_batch: usize,
        injector: Option<FaultInjector>,
    ) -> io::Result<TenantLog> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let destination = snapshot_path(&dir, generation);
        let staged = stage_write(&destination, snapshot_json.as_bytes())?;
        let mut journal = Journal::create(journal_path(&dir, generation), fsync_batch)?;
        journal.set_injector(injector.clone());
        commit_staged(&staged, &destination)?;
        remove_other_generations(&dir, generation);
        Ok(TenantLog {
            dir,
            generation,
            snapshot_bytes: snapshot_json.len() as u64,
            journal,
            fsync_batch,
            injector,
        })
    }

    /// Append one event record to the journal (group-committed).
    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        self.journal.append(record)
    }

    /// Flush batched appends to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.journal.sync()
    }

    /// Compact: make `snapshot_json` the next generation's baseline and start
    /// an empty journal, retiring the current journal tail.  O(snapshot), not
    /// O(journal length).
    pub fn compact(&mut self, snapshot_json: &str) -> io::Result<()> {
        *self = TenantLog::begin_with(
            self.dir.clone(),
            self.generation + 1,
            snapshot_json,
            self.fsync_batch,
            self.injector.clone(),
        )?;
        Ok(())
    }

    /// Current on-disk counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            generation: self.generation,
            log_records: self.journal.records(),
            log_bytes: self.journal.bytes(),
            snapshot_bytes: self.snapshot_bytes,
        }
    }

    /// The tenant directory this log writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Journal appends not yet covered by an `fsync` (the tenant's WAL
    /// backlog, surfaced by the server's `health` operation).
    pub fn pending(&self) -> usize {
        self.journal.pending()
    }
}

/// A tenant rebuilt from disk: the restored baseline value, the journal tail
/// to replay on top of it, and the log reopened for further appends.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The value the caller's `restore` closure produced from the chosen
    /// snapshot.
    pub value: T,
    /// The generation the tenant recovered from.
    pub generation: u64,
    /// Journal records appended after that snapshot, in order; the caller
    /// replays these through its normal apply path.
    pub records: Vec<Vec<u8>>,
    /// The tenant's log, truncated past any corruption and open for append.
    pub log: TenantLog,
    /// Journal corruption found (and repaired by truncation), if any.
    pub corruption: Option<Corruption>,
    /// Human-readable recovery anomalies: skipped unreadable generations,
    /// the corruption description, etc.
    pub notes: Vec<String>,
}

/// Handle on a data directory holding one subdirectory per tenant.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    fsync_batch: usize,
    /// Chaos hook every tenant log opened through this store inherits.
    injector: Option<FaultInjector>,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`.  `fsync_batch` is
    /// the group-commit size every tenant journal uses: 1 = fsync per event,
    /// larger values amortize the flush over that many appends.
    pub fn open(root: impl Into<PathBuf>, fsync_batch: usize) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store {
            root,
            fsync_batch: fsync_batch.max(1),
            injector: None,
        })
    }

    /// Install a chaos hook on every tenant log this store opens from now on
    /// (already-open logs are unaffected).
    pub fn set_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured group-commit batch size.
    pub fn fsync_batch(&self) -> usize {
        self.fsync_batch
    }

    /// The directory a tenant's generations live in.
    pub fn tenant_dir(&self, name: &str) -> PathBuf {
        self.root.join(encode_tenant_name(name))
    }

    /// Every tenant with a directory in the store, sorted by name.  Entries
    /// that do not decode as tenant names are skipped.
    pub fn tenant_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let encoded = entry.file_name();
            if let Some(name) = encoded.to_str().and_then(decode_tenant_name) {
                names.push(name);
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Begin durable state for a tenant with `snapshot_json` as its baseline.
    /// If generations already exist (an `open` racing a crashed `close`, or a
    /// `restore` over live state) the new generation supersedes them.
    pub fn begin_tenant(&self, name: &str, snapshot_json: &str) -> io::Result<TenantLog> {
        let dir = self.tenant_dir(name);
        let next = list_generations(&dir)?.first().map_or(0, |gen| gen + 1);
        TenantLog::begin_with(
            dir,
            next,
            snapshot_json,
            self.fsync_batch,
            self.injector.clone(),
        )
    }

    /// Remove a tenant's durable state entirely (the `close` operation).
    /// Missing directories are fine — removal is idempotent.
    pub fn remove_tenant(&self, name: &str) -> io::Result<()> {
        match fs::remove_dir_all(self.tenant_dir(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Rebuild a tenant from disk.  Tries generations newest-first; the first
    /// snapshot the `restore` closure accepts wins, its journal is scanned
    /// (truncating a torn or corrupt tail in place), and older or unreadable
    /// generations are deleted.  Fails with `InvalidData` when no generation
    /// restores — the caller decides whether that aborts startup (it should
    /// not; skip the tenant and keep serving the rest).
    pub fn load_tenant<T, E: Display>(
        &self,
        name: &str,
        mut restore: impl FnMut(&str) -> Result<T, E>,
    ) -> io::Result<Recovered<T>> {
        let dir = self.tenant_dir(name);
        let generations = list_generations(&dir)?;
        if generations.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("tenant '{name}' has no snapshot on disk"),
            ));
        }
        let mut notes = Vec::new();
        for generation in generations {
            let snapshot_file = snapshot_path(&dir, generation);
            let snapshot_json = match fs::read_to_string(&snapshot_file) {
                Ok(json) => json,
                Err(e) => {
                    notes.push(format!("generation {generation}: unreadable snapshot: {e}"));
                    continue;
                }
            };
            let value = match restore(&snapshot_json) {
                Ok(value) => value,
                Err(e) => {
                    notes.push(format!("generation {generation}: snapshot rejected: {e}"));
                    continue;
                }
            };
            let (mut journal, scan) =
                Journal::recover(journal_path(&dir, generation), self.fsync_batch)?;
            journal.set_injector(self.injector.clone());
            if let Some(corruption) = &scan.corruption {
                notes.push(format!(
                    "generation {generation}: {corruption}; truncated journal to {} intact record(s)",
                    scan.records.len()
                ));
            }
            // The chosen generation is now canonical: stale newer generations
            // with rejected snapshots must not shadow it on the next boot.
            remove_other_generations(&dir, generation);
            return Ok(Recovered {
                value,
                generation,
                records: scan.records,
                log: TenantLog {
                    dir,
                    generation,
                    snapshot_bytes: snapshot_json.len() as u64,
                    journal,
                    fsync_batch: self.fsync_batch,
                    injector: self.injector.clone(),
                },
                corruption: scan.corruption,
                notes,
            });
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "tenant '{name}': no generation restores ({})",
                notes.join("; ")
            ),
        ))
    }

    /// Read-only health report for a tenant, used by `fsck`: generation
    /// inventory, snapshot bytes, and a journal scan.  Unlike
    /// [`Store::load_tenant`] this never truncates or deletes anything.
    pub fn inspect_tenant(&self, name: &str) -> io::Result<TenantInspection> {
        let dir = self.tenant_dir(name);
        let generations = list_generations(&dir)?;
        let newest = generations.first().copied();
        let (snapshot_json, snapshot_error) = match newest {
            Some(gen) => match fs::read_to_string(snapshot_path(&dir, gen)) {
                Ok(json) => (Some(json), None),
                Err(e) => (None, Some(e.to_string())),
            },
            None => (None, Some("no snapshot file".to_string())),
        };
        let scan = match newest {
            Some(gen) => Some(scan_journal(&journal_path(&dir, gen))?),
            None => None,
        };
        Ok(TenantInspection {
            generations,
            snapshot_json,
            snapshot_error,
            scan,
        })
    }
}

/// What [`Store::inspect_tenant`] found on disk for one tenant.
#[derive(Debug)]
pub struct TenantInspection {
    /// All generations present, newest first.
    pub generations: Vec<u64>,
    /// Contents of the newest generation's snapshot, if readable.
    pub snapshot_json: Option<String>,
    /// Why the snapshot could not be read, if it couldn't.
    pub snapshot_error: Option<String>,
    /// Scan of the newest generation's journal (`None` when the tenant has
    /// no generations at all).
    pub scan: Option<crate::frame::JournalScan>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> Store {
        let root = std::env::temp_dir().join(format!(
            "busytime-durability-store-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        Store::open(root, 1).unwrap()
    }

    fn cleanup(store: Store) {
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn tenant_name_encoding_round_trips() {
        for name in [
            "plain",
            "has space",
            "sl/ash",
            "dots.and%percent",
            "ünïcode",
            "",
        ] {
            let encoded = encode_tenant_name(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "encoding of {name:?} is not filesystem-safe: {encoded}"
            );
            assert_eq!(decode_tenant_name(&encoded).as_deref(), Some(name));
        }
        assert_eq!(decode_tenant_name("not!encoded"), None);
        assert_eq!(decode_tenant_name("trailing%4"), None);
    }

    #[test]
    fn begin_append_load_round_trips() {
        let store = temp_store("round-trip");
        let mut log = store.begin_tenant("acme", "{\"state\":0}").unwrap();
        log.append(b"event-1").unwrap();
        log.append(b"event-2").unwrap();
        log.sync().unwrap();
        drop(log);

        let recovered = store
            .load_tenant("acme", |json| Ok::<_, String>(json.to_string()))
            .unwrap();
        assert_eq!(recovered.value, "{\"state\":0}");
        assert_eq!(recovered.generation, 0);
        assert_eq!(
            recovered.records,
            vec![b"event-1".to_vec(), b"event-2".to_vec()]
        );
        assert!(recovered.corruption.is_none());
        cleanup(store);
    }

    #[test]
    fn compaction_bumps_generation_and_drops_tail() {
        let store = temp_store("compact");
        let mut log = store.begin_tenant("acme", "base-0").unwrap();
        log.append(b"one").unwrap();
        log.compact("base-1").unwrap();
        assert_eq!(log.generation(), 1);
        assert_eq!(log.stats().log_records, 0);
        log.append(b"two").unwrap();
        log.sync().unwrap();
        drop(log);

        // Only the new generation survives on disk.
        let dir = store.tenant_dir("acme");
        assert_eq!(list_generations(&dir).unwrap(), vec![1]);
        let recovered = store
            .load_tenant("acme", |json| Ok::<_, String>(json.to_string()))
            .unwrap();
        assert_eq!(recovered.value, "base-1");
        assert_eq!(recovered.records, vec![b"two".to_vec()]);
        cleanup(store);
    }

    #[test]
    fn rejected_newest_snapshot_falls_back_to_older_generation() {
        let store = temp_store("fallback");
        let mut log = store.begin_tenant("acme", "good").unwrap();
        log.append(b"tail").unwrap();
        log.sync().unwrap();
        // Fake a newer generation with a snapshot the restorer rejects,
        // mimicking a crash that left a corrupt compaction output.
        let dir = store.tenant_dir("acme");
        fs::write(snapshot_path(&dir, 1), "corrupt").unwrap();
        drop(log);

        let recovered = store
            .load_tenant("acme", |json| {
                if json == "good" {
                    Ok(json.to_string())
                } else {
                    Err("unparseable".to_string())
                }
            })
            .unwrap();
        assert_eq!(recovered.value, "good");
        assert_eq!(recovered.generation, 0);
        assert_eq!(recovered.records, vec![b"tail".to_vec()]);
        assert!(recovered.notes.iter().any(|n| n.contains("generation 1")));
        // The corrupt newer generation was cleaned up.
        assert_eq!(list_generations(&dir).unwrap(), vec![0]);
        cleanup(store);
    }

    #[test]
    fn load_truncates_torn_journal_tail() {
        let store = temp_store("torn");
        let mut log = store.begin_tenant("acme", "base").unwrap();
        log.append(b"whole").unwrap();
        log.append(b"torn!").unwrap();
        log.sync().unwrap();
        let journal_file = journal_path(&store.tenant_dir("acme"), 0);
        drop(log);
        let len = fs::metadata(&journal_file).unwrap().len();
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&journal_file)
            .unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let recovered = store
            .load_tenant("acme", |json| Ok::<_, String>(json.to_string()))
            .unwrap();
        assert_eq!(recovered.records, vec![b"whole".to_vec()]);
        assert!(recovered.corruption.is_some());
        // Truncation is persisted: a second load sees a clean journal.
        let again = store
            .load_tenant("acme", |json| Ok::<_, String>(json.to_string()))
            .unwrap();
        assert!(again.corruption.is_none());
        assert_eq!(again.records, vec![b"whole".to_vec()]);
        cleanup(store);
    }

    #[test]
    fn remove_tenant_is_idempotent_and_listing_skips_strays() {
        let store = temp_store("remove");
        store.begin_tenant("keep", "s").unwrap();
        store.begin_tenant("drop", "s").unwrap();
        fs::create_dir_all(store.root().join("not!a!tenant")).unwrap();
        fs::write(store.root().join("stray-file"), "x").unwrap();
        store.remove_tenant("drop").unwrap();
        store.remove_tenant("drop").unwrap();
        assert_eq!(store.tenant_names().unwrap(), vec!["keep".to_string()]);
        cleanup(store);
    }

    #[test]
    fn begin_tenant_over_existing_state_supersedes_it() {
        let store = temp_store("supersede");
        let mut log = store.begin_tenant("acme", "old").unwrap();
        log.append(b"stale").unwrap();
        log.sync().unwrap();
        drop(log);
        // A restore over live state starts a fresh generation.
        let log = store.begin_tenant("acme", "new").unwrap();
        assert_eq!(log.generation(), 1);
        drop(log);
        let recovered = store
            .load_tenant("acme", |json| Ok::<_, String>(json.to_string()))
            .unwrap();
        assert_eq!(recovered.value, "new");
        assert!(recovered.records.is_empty());
        cleanup(store);
    }

    #[test]
    fn inspect_is_read_only() {
        let store = temp_store("inspect");
        let mut log = store.begin_tenant("acme", "base").unwrap();
        log.append(b"rec").unwrap();
        log.sync().unwrap();
        let journal_file = journal_path(&store.tenant_dir("acme"), 0);
        drop(log);
        let before = fs::read(&journal_file).unwrap();
        // Corrupt the tail, inspect, and confirm the file is untouched.
        let mut bytes = before.clone();
        bytes.push(0xff);
        fs::write(&journal_file, &bytes).unwrap();
        let inspection = store.inspect_tenant("acme").unwrap();
        assert_eq!(inspection.generations, vec![0]);
        assert!(inspection.snapshot_json.is_some());
        let scan = inspection.scan.unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 1);
        assert_eq!(fs::read(&journal_file).unwrap(), bytes);
        cleanup(store);
    }
}
