//! Append-only per-tenant durability for the busytime scheduling server.
//!
//! The crate is deliberately std-only and payload-agnostic: records are
//! opaque byte strings (the server logs its own NDJSON wire requests), and
//! snapshot restoration is delegated to a caller-supplied closure, so this
//! layer knows nothing about schedulers.  What it does know:
//!
//! - **Framing** ([`Journal`], [`scan_journal`]): length-prefixed frames,
//!   each protected by an IEEE [`crc32`].  Appends hit the kernel with one
//!   `write(2)` per frame (a `SIGKILL` never loses an acknowledged-and-
//!   written frame); `fsync` is batched over `fsync_batch` appends (group
//!   commit).
//! - **Recovery** ([`Journal::recover`]): scan front to back, stop at the
//!   first torn or CRC-failing frame, truncate the file there, and hand
//!   back the intact prefix.  A corrupt tail costs the un-synced suffix,
//!   never the log.
//! - **Generations** ([`Store`], [`TenantLog`]): each tenant directory
//!   holds one live `snapshot.<gen>.json` + `journal.<gen>.log` pair.
//!   Compaction writes generation `g+1`'s snapshot atomically (temp file +
//!   rename), starts an empty journal, then deletes generation `g`; a crash
//!   at any point leaves at least one restorable generation, and recovery
//!   prefers the newest one that restores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod inject;
mod store;

pub use frame::{
    crc32, scan_journal, Corruption, Journal, JournalScan, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
pub use inject::{FaultInjector, IoPoint};
pub use store::{
    decode_tenant_name, encode_tenant_name, journal_path, list_generations, snapshot_path,
    Recovered, Store, TenantInspection, TenantLog, WalStats,
};
