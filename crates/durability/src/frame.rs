//! Length-prefixed, CRC-checked journal frames and the append-only [`Journal`].
//!
//! A journal is a flat file of frames, each laid out as
//!
//! ```text
//! [payload length: u32 LE][CRC-32 of payload: u32 LE][payload bytes]
//! ```
//!
//! Appends are written through to the file immediately (one `write(2)` per
//! frame), so a killed process never loses a frame it finished writing; only
//! the `fsync` is batched (group commit).  Recovery scans the file front to
//! back and stops at the first frame that is torn (fewer bytes on disk than
//! the header promises) or fails its CRC — everything before that point is
//! the durable prefix.

use crate::inject::{FaultInjector, IoPoint};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Upper bound on a single frame payload.  A corrupted length prefix must not
/// make the scanner attempt a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// Bytes of framing overhead per record (length prefix + CRC).
pub const FRAME_HEADER_LEN: u64 = 8;

/// Compute the IEEE CRC-32 checksum of `data` (the polynomial used by zip,
/// PNG, and ethernet), via the classic byte-at-a-time table.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Why a journal scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// The file ends mid-frame: fewer bytes remain than the header promises
    /// (or the header itself is incomplete).  The usual aftermath of a crash
    /// mid-`write`.
    TornFrame {
        /// Byte offset of the torn frame's header.
        offset: u64,
    },
    /// A complete frame whose payload does not match its recorded CRC.
    BadCrc {
        /// Byte offset of the corrupt frame's header.
        offset: u64,
        /// Zero-based index of the corrupt record.
        index: usize,
    },
    /// A length prefix larger than [`MAX_FRAME_LEN`] — treated as garbage
    /// rather than trusted.
    OversizedFrame {
        /// Byte offset of the frame's header.
        offset: u64,
        /// The implausible length the header claimed.
        len: u32,
    },
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::TornFrame { offset } => {
                write!(f, "torn frame at byte {offset} (file ends mid-record)")
            }
            Corruption::BadCrc { offset, index } => {
                write!(f, "CRC mismatch in record {index} at byte {offset}")
            }
            Corruption::OversizedFrame { offset, len } => {
                write!(f, "implausible frame length {len} at byte {offset}")
            }
        }
    }
}

/// The result of scanning a journal file front to back.
#[derive(Debug)]
pub struct JournalScan {
    /// Every intact record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length of the valid prefix in bytes; the file is trustworthy up to
    /// here and garbage past it.
    pub valid_bytes: u64,
    /// Total size of the file as found on disk.
    pub total_bytes: u64,
    /// What stopped the scan, if anything did.
    pub corruption: Option<Corruption>,
}

impl JournalScan {
    /// True when every byte of the file parsed as intact frames.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
    }
}

/// Scan a journal file without modifying it.  Missing files scan as empty —
/// a tenant that never logged an event has an empty durable prefix, not an
/// error.
pub fn scan_journal(path: &Path) -> io::Result<JournalScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let total_bytes = bytes.len() as u64;
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut corruption = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < FRAME_HEADER_LEN as usize {
            corruption = Some(Corruption::TornFrame {
                offset: offset as u64,
            });
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            corruption = Some(Corruption::OversizedFrame {
                offset: offset as u64,
                len,
            });
            break;
        }
        let body_start = offset + FRAME_HEADER_LEN as usize;
        if remaining < FRAME_HEADER_LEN as usize + len as usize {
            corruption = Some(Corruption::TornFrame {
                offset: offset as u64,
            });
            break;
        }
        let payload = &bytes[body_start..body_start + len as usize];
        if crc32(payload) != crc {
            corruption = Some(Corruption::BadCrc {
                offset: offset as u64,
                index: records.len(),
            });
            break;
        }
        records.push(payload.to_vec());
        offset = body_start + len as usize;
    }
    Ok(JournalScan {
        records,
        valid_bytes: offset as u64,
        total_bytes,
        corruption,
    })
}

/// An append-only journal open for writing, with fsync-batched group commit.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    fsync_batch: usize,
    pending: usize,
    records: u64,
    bytes: u64,
    /// Reused frame-assembly buffer: `append` runs on a shard's hot path, so
    /// each record must not cost a fresh allocation.
    scratch: Vec<u8>,
    /// Chaos hook consulted before each write/fsync; `None` in production.
    injector: Option<FaultInjector>,
}

impl Journal {
    /// Create (or truncate) a journal at `path`.
    pub fn create(path: impl Into<PathBuf>, fsync_batch: usize) -> io::Result<Journal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Journal {
            file,
            path,
            fsync_batch: fsync_batch.max(1),
            pending: 0,
            records: 0,
            bytes: 0,
            scratch: Vec::new(),
            injector: None,
        })
    }

    /// Open an existing journal for appending, first scanning it and
    /// truncating away anything past the valid prefix so a torn tail never
    /// poisons later appends.  Returns the journal together with the scan
    /// (whose `records` are the recovered payloads).
    pub fn recover(
        path: impl Into<PathBuf>,
        fsync_batch: usize,
    ) -> io::Result<(Journal, JournalScan)> {
        let path = path.into();
        let scan = scan_journal(&path)?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        if scan.valid_bytes < scan.total_bytes {
            file.set_len(scan.valid_bytes)?;
            file.sync_data()?;
        }
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::Start(scan.valid_bytes))?;
        let journal = Journal {
            file,
            path,
            fsync_batch: fsync_batch.max(1),
            pending: 0,
            records: scan.records.len() as u64,
            bytes: scan.valid_bytes,
            scratch: Vec::new(),
            injector: None,
        };
        Ok((journal, scan))
    }

    /// Install (or clear) the chaos hook consulted before each write/fsync.
    pub fn set_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// Append one record.  The frame is handed to the kernel immediately
    /// (surviving a `SIGKILL` of this process); `fsync` runs once every
    /// `fsync_batch` appends.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(
            payload.len() as u64 <= MAX_FRAME_LEN as u64,
            "journal record exceeds MAX_FRAME_LEN"
        );
        if let Some(injector) = &self.injector {
            injector.check(IoPoint::Append)?;
        }
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.scratch
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.scratch.extend_from_slice(payload);
        self.file.write_all(&self.scratch)?;
        self.records += 1;
        self.bytes += self.scratch.len() as u64;
        self.pending += 1;
        if self.pending >= self.fsync_batch {
            self.sync()?;
        }
        Ok(())
    }

    /// Force any batched appends down to stable storage now.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            if let Some(injector) = &self.injector {
                injector.check(IoPoint::Sync)?;
            }
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Number of records in the journal (recovered + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Size of the journal in bytes, including framing overhead.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends not yet covered by an `fsync`.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The file this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "busytime-durability-frame-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_scan_round_trips() {
        let path = temp_path("round-trip");
        let mut journal = Journal::create(&path, 2).unwrap();
        journal.append(b"alpha").unwrap();
        journal.append(b"beta").unwrap();
        journal.append(b"gamma").unwrap();
        journal.sync().unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
        assert_eq!(scan.valid_bytes, journal.bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix_and_truncates() {
        let path = temp_path("torn");
        let mut journal = Journal::create(&path, 1).unwrap();
        journal.append(b"keep-me").unwrap();
        journal.append(b"lose-me").unwrap();
        drop(journal);
        // Tear the final frame: drop its last byte.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 1).unwrap();
        drop(file);

        let (mut journal, scan) = Journal::recover(&path, 1).unwrap();
        assert_eq!(scan.records, vec![b"keep-me".to_vec()]);
        assert!(matches!(
            scan.corruption,
            Some(Corruption::TornFrame { .. })
        ));
        // The file was truncated to the valid prefix and appends resume cleanly.
        journal.append(b"after-repair").unwrap();
        drop(journal);
        let rescan = scan_journal(&path).unwrap();
        assert!(rescan.is_clean());
        assert_eq!(
            rescan.records,
            vec![b"keep-me".to_vec(), b"after-repair".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_stops_scan_at_corrupt_record() {
        let path = temp_path("flip");
        let mut journal = Journal::create(&path, 1).unwrap();
        journal.append(b"first").unwrap();
        journal.append(b"second").unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside the second record.
        let target = bytes.len() - 2;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records, vec![b"first".to_vec()]);
        assert!(matches!(
            scan.corruption,
            Some(Corruption::BadCrc { index: 1, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_trusted() {
        let path = temp_path("oversized");
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &frame).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(
            scan.corruption,
            Some(Corruption::OversizedFrame { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_scans_as_empty() {
        let path = temp_path("missing").with_file_name("never-created.log");
        let scan = scan_journal(&path).unwrap();
        assert!(scan.is_clean());
        assert!(scan.records.is_empty());
        assert_eq!(scan.total_bytes, 0);
    }

    #[test]
    fn fsync_batching_counts_pending_appends() {
        let path = temp_path("pending");
        let mut journal = Journal::create(&path, 4).unwrap();
        journal.append(b"a").unwrap();
        journal.append(b"b").unwrap();
        assert_eq!(journal.pending(), 2);
        journal.append(b"c").unwrap();
        journal.append(b"d").unwrap();
        // The fourth append crossed the batch boundary and synced.
        assert_eq!(journal.pending(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
