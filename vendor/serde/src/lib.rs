//! Offline vendor stub of [`serde`](https://docs.rs/serde).
//!
//! The real serde is a zero-copy visitor framework; this stub replaces it with a much
//! simpler tree model: [`Serialize`] renders a type into a [`Value`], [`Deserialize`]
//! rebuilds a type from one.  The `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` stub) generate impls of these traits with the same on-the-wire
//! conventions as real serde + serde_json for the shapes this workspace uses: structs as
//! objects, newtype structs as their inner value, tuples and `Vec`s as arrays, `Option`
//! as the value or `null`.  Swapping the real crates back in is a one-line change in the
//! workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A serialized tree — the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as real serde_json does).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (all integer widths used by this workspace fit in `i64`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required field of an object, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => self
                .get(key)
                .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
            other => Err(Error::custom(format!(
                "expected an object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Serialize into the stub's tree model.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the stub's tree model.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!("expected an integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let f = *self as f64;
                // Real serde_json has no representation for non-finite floats and emits
                // null; mirror that so experiment reports with infinite bounds serialize.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected a number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected an array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let expected = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == expected => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected an array of {expected} elements, found {}",
                        items.len()
                    ))),
                    other => Err(Error::custom(format!("expected an array, found {}", other.kind()))),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize(&42i64.serialize()).unwrap(), 42);
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1i64, 2i64), (3, 4)];
        assert_eq!(Vec::<(i64, i64)>::deserialize(&v.serialize()).unwrap(), v);
        let opt: Option<usize> = None;
        assert_eq!(
            Option::<usize>::deserialize(&opt.serialize()).unwrap(),
            None
        );
        assert_eq!(
            Option::<usize>::deserialize(&Some(3usize).serialize()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.serialize(), Value::Null);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(usize::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj
            .field("b")
            .unwrap_err()
            .to_string()
            .contains("missing field `b`"));
        assert!(Value::Int(3).field("a").is_err());
    }
}
