//! Offline vendor stub of [`criterion`](https://docs.rs/criterion).
//!
//! Implements the group / `bench_with_input` / `bench_function` / `iter` surface this
//! workspace's benches use, with a simple median-of-samples wall-clock measurement and
//! one line of output per benchmark.  No statistical analysis, plots or baselines — the
//! point is that `cargo bench` compiles and produces comparable numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Throughput annotation (accepted, reported alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (each sample is one timed batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Record the per-iteration throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Benchmark a routine with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Times a closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: a warm-up call, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let best = sorted[0];
        println!(
            "  {group}/{id}: median {:?}, best {:?} ({} samples)",
            median,
            best,
            sorted.len()
        );
    }
}

/// Collect benchmark functions into a runnable group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bench_and_report() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(4));
        let input = vec![1u64, 2, 3, 4];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }
}
