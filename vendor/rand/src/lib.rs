//! Offline vendor stub of [`rand`](https://docs.rs/rand) 0.9.
//!
//! Provides exactly what this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over integer and float
//! ranges.  The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), which is fine here: callers only rely on
//! determinism per seed, never on specific values.  Swapping the real crate back in is
//! a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng` (only the `seed_from_u64`
/// constructor is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Map 64 random bits to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream to fill the state, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can produce a uniform sample, mirroring `rand::distr::uniform`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<i64> = (0..16).map(|_| a.random_range(0..1_000_000i64)).collect();
        let ys: Vec<i64> = (0..16).map(|_| b.random_range(0..1_000_000i64)).collect();
        let zs: Vec<i64> = (0..16).map(|_| c.random_range(0..1_000_000i64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
            let u = rng.random_range(3usize..7);
            assert!((3..7).contains(&u));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(4..=4i64), 4);
        assert_eq!(rng.random_range(0..=0usize), 0);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }
}
