//! Offline vendor stub of `serde_derive`.
//!
//! Generates impls of the stub `serde::Serialize` / `serde::Deserialize` traits (a
//! `Value`-tree model rather than the real visitor framework).  Token parsing is done by
//! hand — no `syn`/`quote` — which is enough for the shapes this workspace derives on:
//! non-generic structs with named fields and non-generic tuple structs.  Enums, generics
//! and serde attributes are intentionally unsupported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed struct.
enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this arity.
    Tuple(usize),
}

/// Parse `input` (the item a derive is attached to) into a struct name and shape.
fn parse_struct(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!(
            "the vendored serde_derive stub only supports structs, found {:?}",
            other.map(|t| t.to_string())
        ),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!(
            "expected a struct name, found {:?}",
            other.map(|t| t.to_string())
        ),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive stub does not support generic structs ({name})");
        }
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::Named(parse_named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Shape::Tuple(tuple_arity(g.stream())))
        }
        other => panic!(
            "expected a struct body for {name}, found {:?}",
            other.map(|t| t.to_string())
        ),
    }
}

/// Extract field names from the contents of a `{ ... }` struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected a field name, found {other}"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "expected `:` after field `{name}`, found {:?}",
                other.map(|t| t.to_string())
            ),
        }
        fields.push(name);
        // Consume the type up to a comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Count the fields of a tuple struct body (the contents of the parentheses).
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tok in body {
        saw_token = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    if saw_token {
        arity + 1
    } else {
        0
    }
}

/// `#[derive(Serialize)]` — render the struct into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — rebuild the struct from a `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(value.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok({name}({entries})),\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected an array of {n} elements, found {{}}\", other.kind()))),\n\
                 }}",
                entries = entries.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
