//! Offline vendor stub of [`rayon`](https://docs.rs/rayon).
//!
//! This workspace builds in environments without network access to crates.io, so the
//! small slice of rayon it uses — `par_iter` / `into_par_iter` followed by `map` and
//! `collect` — is reimplemented here on top of `std::thread::scope`.  Items are
//! materialized, split into one contiguous chunk per available core, mapped on worker
//! threads, and reassembled in input order, so results are deterministic and identical
//! to a sequential run (each item is processed independently, exactly as with the real
//! rayon).  Swapping the real crate back in is a one-line change in the workspace
//! manifest; no caller code depends on anything beyond the genuine rayon API.
//!
//! As of the placement/throughput rework the workspace's own batch paths
//! (`busytime::Solver::solve_batch`, the experiment sweeps) run on the in-tree
//! work-stealing pool in `busytime::par` instead of this stub; the crate stays in the
//! workspace as the documented path-swap target for environments with crates.io
//! access.

#![forbid(unsafe_code)]

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads for `n` items: one per available core, never more than `n`.
fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Apply `f` to every item on a pool of scoped threads, preserving input order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    })
}

/// A parallel iterator: a pipeline that can be driven to an ordered `Vec`.
pub trait ParallelIterator: Sized {
    /// The item type produced by the pipeline.
    type Item: Send;

    /// Run the pipeline and collect every item in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Map every item through `f` (executed on worker threads at drive time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collect the results; `C` is anything buildable from an ordered `Vec` (in practice
    /// `Vec<Item>` itself, matching how this workspace uses rayon).
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.drive())
    }
}

/// Leaf pipeline stage: an owned list of items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A `map` pipeline stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), &self.f)
    }
}

/// Conversion into a parallel iterator (`0..n`, `Vec<T>`, `&[T]`, …).
pub trait IntoParallelIterator {
    /// The item type of the resulting iterator.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = VecParIter<I::Item>;

    fn into_par_iter(self) -> VecParIter<I::Item> {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` on collections, yielding shared references.
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate over `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized> IntoParallelRefIterator<'a> for C
where
    C: 'a,
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<i64> = (0..1000i64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let items = vec![3usize, 1, 4, 1, 5];
        let lens: Vec<usize> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(lens, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn chained_maps() {
        let out: Vec<String> = (0..10u32)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out[9], "10");
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
