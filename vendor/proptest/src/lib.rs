//! Offline vendor stub of [`proptest`](https://docs.rs/proptest).
//!
//! Supports the surface this workspace's property tests use: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, range / tuple / `Just` / `any::<bool>()`
//! / `prop::collection::vec` strategies, `prop_map` / `prop_flat_map` combinators, and
//! the `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike the real proptest there is **no shrinking** and no failure persistence: each
//! test runs a fixed number of cases sampled from a generator seeded deterministically
//! from the test's name, so failures reproduce across runs.  A failing case panics with
//! the case number and the assertion message.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies (deterministic per test).
pub type TestRng = rand::rngs::StdRng;

/// Build the deterministic RNG for a named test.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name gives a stable, well-spread 64-bit seed.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// Per-test configuration (only the case count is honoured by the stub).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite fast while still sampling
        // a meaningful space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Record a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for a type (`any::<bool>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification: a fixed size or a half-open / inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs in scope, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests (see the crate docs for the supported surface).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        ::std::panic!("property failed on case {}/{}: {}", __case + 1, __cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                ::std::format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Fail the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in -5i64..5, n in 2usize..11) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((2..11).contains(&n));
        }

        /// Tuple + map + flat_map + vec compose, and tuple patterns destructure.
        #[test]
        fn combinators_compose((len, items) in (1usize..4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec((any::<bool>(), 0i64..10).prop_map(|(b, v)| if b { v } else { -v }), n))
        })) {
            prop_assert_eq!(items.len(), len);
            for v in &items {
                prop_assert!((-10..10).contains(v));
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use super::Strategy;
        let mut a = super::rng_for_test("some_test");
        let mut b = super::rng_for_test("some_test");
        let s = 0i64..1_000_000;
        let xs: Vec<i64> = (0..8).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<i64> = (0..8).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x < 0, "x was {}", x);
            }
        }
        always_fails();
    }
}
