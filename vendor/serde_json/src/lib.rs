//! Offline vendor stub of [`serde_json`](https://docs.rs/serde_json).
//!
//! Serializes the vendored `serde::Value` tree model to JSON text and parses JSON text
//! back into it.  Output conventions match real serde_json for the shapes this workspace
//! serializes (objects, arrays, strings, i64 integers, finite floats, `null` for
//! non-finite floats); the pretty printer uses two-space indentation like the real one.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io;

/// JSON serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` to pretty JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty JSON into an [`io::Write`].
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

fn emit(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float representation.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => emit_seq(
            items.iter().map(|v| (None, v)),
            indent,
            depth,
            out,
            '[',
            ']',
        ),
        Value::Object(fields) => emit_seq(
            fields.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            depth,
            out,
            '{',
            '}',
        ),
    }
}

fn emit_seq<'a>(
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
) {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let len = items.len();
    for (i, (key, v)) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        if let Some(k) = key {
            emit_string(k, out);
            out.push(':');
            out.push(' ');
        }
        emit(v, indent, depth + 1, out);
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                // compact mode: no space after commas, matching serde_json
            }
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "invalid escape at offset {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("capacity".into(), Value::Int(3)),
            (
                "jobs".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::Int(0), Value::Int(10)]),
                    Value::Array(vec![Value::Int(-2), Value::Int(12)]),
                ]),
            ),
            ("label".into(), Value::Str("a \"quoted\" name\n".into())),
            ("ratio".into(), Value::Float(1.25)),
            ("missing".into(), Value::Null),
            ("ok".into(), Value::Bool(true)),
        ]);
        for text in [
            to_string(&WrappedValue(v.clone())).unwrap(),
            to_string_pretty(&WrappedValue(v.clone())).unwrap(),
        ] {
            let back: WrappedValue = from_str(&text).unwrap();
            assert_eq!(back.0, v);
        }
    }

    /// Tiny adapter so the tests can push a raw `Value` through the public API.
    struct WrappedValue(Value);

    impl Serialize for WrappedValue {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for WrappedValue {
        fn deserialize(value: &Value) -> Result<Self, serde::Error> {
            Ok(WrappedValue(value.clone()))
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<WrappedValue>("{not json").is_err());
        assert!(from_str::<WrappedValue>("[1, 2,]").is_err());
        assert!(from_str::<WrappedValue>("42 garbage").is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = WrappedValue(Value::Object(vec![(
            "a".into(),
            Value::Array(vec![Value::Int(1)]),
        )]));
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_round_trip_shortest() {
        let text = to_string(&WrappedValue(Value::Float(0.1))).unwrap();
        assert_eq!(text, "0.1");
        assert!(
            matches!(from_str::<WrappedValue>("1e3").unwrap().0, Value::Float(f) if f == 1000.0)
        );
    }
}
