//! Two-dimensional (rectangular) scheduling — Section 3.4 of the paper.
//!
//! Periodic jobs run during specific hours of the day (dimension 1) across a range of
//! days (dimension 2); a machine can serve at most `g` overlapping jobs and its cost is
//! the *area* of the union of its jobs (hours × days it must be reserved).
//!
//! The example compares plain FirstFit with BucketFirstFit on a random periodic workload,
//! shows the 1-D relaxation through the `Solver` facade's rectangle conversion hook, and
//! then reproduces the Figure 3 adversarial family on which FirstFit is provably bad.
//!
//! Run with `cargo run -p busytime-bench --example rectangle_scheduling --release`.

use busytime::twodim::{
    bucket_first_fit, bucket_first_fit_guarantee, first_fit_2d, first_fit_2d_guarantee, Instance2d,
    DEFAULT_BUCKET_BASE,
};
use busytime::{Problem, Solver};
use busytime_workload::{
    figure3_asymptotic_ratio, figure3_good_solution_cost, figure3_instance, rect_instance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- A periodic workload: jobs of 1-12 hours over 1-30 days. -----------------------
    let mut rng = StdRng::seed_from_u64(5);
    let instance = rect_instance(&mut rng, 300, 4, 24 * 14, 1, 12.0, 30.0);
    println!(
        "periodic workload: {} rectangular jobs, capacity g = {}, γ₁ = {:.1}, γ₂ = {:.1}",
        instance.len(),
        instance.capacity(),
        instance.gamma(1).unwrap(),
        instance.gamma(2).unwrap()
    );
    let ff = first_fit_2d(&instance);
    let bucketed = bucket_first_fit(&instance, DEFAULT_BUCKET_BASE);
    ff.validate_complete(&instance).unwrap();
    bucketed.validate_complete(&instance).unwrap();
    let lb = instance.lower_bound();
    println!("  area lower bound          : {lb}");
    println!(
        "  FirstFit (Lemma 3.5)      : {} (ratio ≤ {:.2}, guarantee {:.1})",
        ff.cost(&instance),
        ff.cost(&instance) as f64 / lb as f64,
        first_fit_2d_guarantee(instance.gamma(1).unwrap())
    );
    println!(
        "  BucketFirstFit (Thm 3.3)  : {} (ratio ≤ {:.2}, guarantee {:.1})",
        bucketed.cost(&instance),
        bucketed.cost(&instance) as f64 / lb as f64,
        bucket_first_fit_guarantee(instance.capacity(), instance.gamma_min().unwrap())
    );

    // --- The facade's 1-D relaxation hook. ---------------------------------------------
    // Projecting every rectangle onto dimension 1 gives an ordinary interval instance
    // that the unified solver dispatches like any other (a relaxation of the 2-D
    // problem, exact when all rectangles share the same dimension-2 extent).
    let relaxation = Problem::min_busy_from_rects(&instance, 1);
    let relaxed = Solver::new()
        .solve(&relaxation)
        .expect("MinBusy always dispatches");
    println!(
        "  1-D relaxation (dim 1)    : busy time {} via {} on the projected intervals",
        relaxed.objective.cost(),
        relaxed.algorithm
    );

    // --- The Figure 3 lower-bound family. ----------------------------------------------
    println!("\nFigure 3 adversarial family (FirstFit is driven towards 6γ₁ + 3):");
    println!(
        "{:<10} {:>14} {:>16} {:>10} {:>12}",
        "γ₁", "FirstFit cost", "good solution", "ratio", "asymptote"
    );
    for gamma1 in [1i64, 2, 4] {
        let g = 24;
        let scale = 64;
        let adversarial: Instance2d = figure3_instance(g, gamma1, scale);
        let schedule = first_fit_2d(&adversarial);
        schedule.validate_complete(&adversarial).unwrap();
        let cost = schedule.cost(&adversarial);
        let good = figure3_good_solution_cost(g, gamma1, scale);
        println!(
            "{:<10} {:>14} {:>16} {:>10.2} {:>12.1}",
            gamma1,
            cost,
            good,
            cost as f64 / good as f64,
            figure3_asymptotic_ratio(gamma1)
        );
    }
    println!(
        "\nReading: on ordinary workloads FirstFit is fine, but the adversarial family \
         shows its ratio really does grow linearly with γ₁, which is why BucketFirstFit \
         groups jobs into geometric width classes first."
    );
}
