//! Optical-network traffic grooming on a line topology (Section 1 and Section 5 of the
//! paper): lightpaths are segments of a line network, at most `g` lightpaths can share a
//! colour (grooming factor), and a regenerator is needed at every node along a coloured
//! segment — so the regenerator cost of a colour is the length of the union of its
//! lightpaths, exactly the busy time of a machine.
//!
//! MinBusy answers "how few regenerators suffice to satisfy every request", and
//! MaxThroughput answers "how many requests can be satisfied with a regenerator budget".
//! Both go through the unified `Solver` facade; the budgeted sweep also forces the
//! greedy fallback to show what the policy knob does.
//!
//! Run with `cargo run -p busytime-bench --example optical_grooming --release`.

use busytime::{Algorithm, Duration, Problem, Solver};
use busytime_workload::optical_lightpaths;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let nodes = 64;
    let grooming_factor = 4;
    let instance = optical_lightpaths(&mut rng, 150, grooming_factor, nodes);
    println!(
        "{} lightpath requests on a {}-node line, grooming factor g = {}",
        instance.len(),
        nodes,
        grooming_factor
    );

    // --- Minimum regenerator deployment ------------------------------------------------
    let solver = Solver::new();
    let solution = solver
        .solve(&Problem::min_busy(instance.clone()))
        .expect("MinBusy always dispatches");
    solution.schedule.validate_complete(&instance).unwrap();
    let ff = Solver::builder()
        .force_algorithm(Algorithm::FirstFit)
        .build()
        .solve(&Problem::min_busy(instance.clone()))
        .expect("FirstFit applies to any instance");
    println!("\nregenerator cost to satisfy every request:");
    println!(
        "  FirstFit [13] (forced): {} regenerator-hops over {} colours",
        ff.objective.cost(),
        ff.schedule.machines_used()
    );
    println!(
        "  auto ({})    : {} regenerator-hops over {} colours",
        solution.algorithm,
        solution.objective.cost(),
        solution.schedule.machines_used()
    );
    println!(
        "  lower bound        : {} regenerator-hops",
        solution.bounds.lower
    );

    // --- Budgeted deployment ------------------------------------------------------------
    println!("\nrequests satisfiable under a regenerator budget:");
    let full_cost = solution.objective.cost().ticks();
    let greedy_only = Solver::builder()
        .force_algorithm(Algorithm::ThroughputGreedy)
        .build();
    for percent in [25i64, 50, 75, 100] {
        let budget = Duration::new(full_cost * percent / 100);
        let problem = Problem::max_throughput(instance.clone(), budget);
        // The facade dispatches to the strongest applicable algorithm; forcing the
        // greedy fallback shows what a policy restriction costs.
        let result = solver
            .solve(&problem)
            .expect("MaxThroughput always dispatches");
        result
            .schedule
            .validate_budgeted(&instance, budget)
            .unwrap();
        let fallback = greedy_only
            .solve(&problem)
            .expect("the greedy fallback always applies");
        println!(
            "  budget {:>6} ({percent:>3}%): {:>3}/{} requests via {} (greedy fallback alone: {})",
            budget,
            result.schedule.throughput(),
            instance.len(),
            result.algorithm,
            fallback.schedule.throughput()
        );
    }
}
