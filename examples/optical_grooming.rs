//! Optical-network traffic grooming on a line topology (Section 1 and Section 5 of the
//! paper): lightpaths are segments of a line network, at most `g` lightpaths can share a
//! colour (grooming factor), and a regenerator is needed at every node along a coloured
//! segment — so the regenerator cost of a colour is the length of the union of its
//! lightpaths, exactly the busy time of a machine.
//!
//! MinBusy answers "how few regenerators suffice to satisfy every request", and
//! MaxThroughput answers "how many requests can be satisfied with a regenerator budget".
//!
//! Run with `cargo run -p busytime-bench --example optical_grooming --release`.

use busytime::maxthroughput::{greedy_fallback, solve_auto as solve_throughput};
use busytime::minbusy::{first_fit, solve_auto};
use busytime::Duration;
use busytime_workload::optical_lightpaths;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let nodes = 64;
    let grooming_factor = 4;
    let instance = optical_lightpaths(&mut rng, 150, grooming_factor, nodes);
    println!(
        "{} lightpath requests on a {}-node line, grooming factor g = {}",
        instance.len(),
        nodes,
        grooming_factor
    );

    // --- Minimum regenerator deployment ------------------------------------------------
    let (schedule, algorithm) = solve_auto(&instance);
    schedule.validate_complete(&instance).unwrap();
    let ff = first_fit(&instance);
    println!("\nregenerator cost to satisfy every request:");
    println!(
        "  FirstFit [13]      : {} regenerator-hops over {} colours",
        ff.cost(&instance),
        ff.machines_used()
    );
    println!(
        "  auto ({algorithm:?}): {} regenerator-hops over {} colours",
        schedule.cost(&instance),
        schedule.machines_used()
    );
    println!(
        "  lower bound        : {} regenerator-hops",
        instance.lower_bound()
    );

    // --- Budgeted deployment ------------------------------------------------------------
    println!("\nrequests satisfiable under a regenerator budget:");
    let full_cost = schedule.cost(&instance).ticks();
    for percent in [25i64, 50, 75, 100] {
        let budget = Duration::new(full_cost * percent / 100);
        // The structured solver handles the recognised instance classes; the greedy
        // fallback covers this general instance.
        let (result, algo) = solve_throughput(&instance, budget);
        result.schedule.validate_budgeted(&instance, budget).unwrap();
        let fallback = greedy_fallback(&instance, budget);
        println!(
            "  budget {:>6} ({percent:>3}%): {:>3}/{} requests via {:?} (greedy fallback alone: {})",
            budget,
            result.throughput,
            instance.len(),
            algo,
            fallback.throughput
        );
    }
}
