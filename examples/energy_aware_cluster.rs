//! Energy-aware cluster scheduling: machines consume power whenever they are switched on
//! (busy), and each machine can host at most `g` jobs at a time.  Total busy time is a
//! direct proxy for energy (Section 1 of the paper, energy motivation).
//!
//! The workload is a batch of jobs whose start times drift forward and whose runtimes are
//! similar — a *proper* instance (no job properly contains another), the class for which
//! the paper's BestCut algorithm guarantees a (2 − 1/g)-approximation (Theorem 3.1).
//! The example measures, through the unified `Solver` facade with forced-algorithm
//! policies, the energy saved by BestCut against the FirstFit baseline and the
//! no-consolidation policy, for several machine capacities.
//!
//! Run with `cargo run -p busytime-bench --example energy_aware_cluster --release`.

use busytime::{Algorithm, Instance, Problem, Solver};
use busytime_workload::proper_instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Energy model: 1 tick of busy time = 1 energy unit (identical machines).
fn energy(cost: busytime::Duration) -> f64 {
    cost.ticks() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let base = proper_instance(&mut rng, 1_000, 1, 60, 4);
    println!(
        "batch of {} jobs, span {} ticks (proper instance: {})",
        base.len(),
        base.span(),
        base.is_proper()
    );
    println!(
        "\n{:<6} {:>14} {:>14} {:>14} {:>12} {:>16}",
        "g", "no consolidation", "FirstFit [13]", "BestCut (Thm 3.1)", "saving", "ratio vs LB"
    );

    let first_fit = Solver::builder()
        .force_algorithm(Algorithm::FirstFit)
        .build();
    let best_cut = Solver::builder()
        .force_algorithm(Algorithm::BestCut)
        .build();

    for g in [2usize, 4, 8, 16] {
        // Same job set, different machine capacity.
        let instance = Instance::new(base.jobs().to_vec(), g).expect("g >= 1");
        let problem = Problem::min_busy(instance.clone());
        let ff = first_fit
            .solve(&problem)
            .expect("FirstFit applies to any instance");
        let bc = best_cut
            .solve(&problem)
            .expect("the batch is a proper instance");
        for s in [&ff, &bc] {
            s.schedule
                .validate_complete(&instance)
                .expect("valid schedule");
        }
        // No consolidation = one job per machine = the length bound the facade reports.
        let e_naive = energy(bc.bounds.length);
        let e_ff = energy(ff.objective.cost());
        let e_bc = energy(bc.objective.cost());
        let saving = 100.0 * (1.0 - e_bc / e_naive);
        let ratio = e_bc / bc.bounds.lower.ticks() as f64;
        let guarantee = bc.guarantee.expect("BestCut has a proven guarantee");
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>14.0} {:>11.1}% {:>10.3} (≤ {:.3})",
            g, e_naive, e_ff, e_bc, saving, ratio, guarantee
        );
        assert!(ratio <= guarantee + 1e-9, "Theorem 3.1 must hold");
    }

    println!(
        "\nReading: consolidating up to g jobs per machine saves energy roughly in \
         proportion to the overlap between consecutive jobs; BestCut never exceeds \
         (2 - 1/g) times the optimum while the FirstFit baseline only guarantees a \
         factor 4."
    );
}
