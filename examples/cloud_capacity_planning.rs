//! Cloud capacity planning: clients rent identical machines that can each host `g`
//! concurrent tasks and pay for the total time machines are switched on (Section 1 of
//! the paper, cloud-computing motivation).
//!
//! The example generates a synthetic request trace, compares the busy time (≈ the bill)
//! achieved through the unified `Solver` facade — forced FirstFit versus the automatic
//! dispatch — against the naive one-machine-per-task policy, and then answers the
//! reverse question: with a fixed budget, how many tasks can be served (MaxThroughput)?
//!
//! Run with `cargo run -p busytime-bench --example cloud_capacity_planning --release`.

use busytime::{Algorithm, Duration, Problem, Solver};
use busytime_workload::cloud_trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn report(label: &str, naive_bill: i64, bill: i64) {
    println!(
        "  {label:<34} bill = {bill:>8} machine-minutes   ({:>5.1}% of the naive bill)",
        100.0 * bill as f64 / naive_bill as f64
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 400 tasks, machines host up to 8 concurrent tasks, mean inter-arrival 3 minutes,
    // task durations between 5 minutes and 8 hours (log-uniform).
    let instance = cloud_trace(&mut rng, 400, 8, 3, 5, 480);
    println!(
        "cloud trace: {} tasks over ~{} minutes, capacity g = {}",
        instance.len(),
        instance.span(),
        instance.capacity()
    );

    let problem = Problem::min_busy(instance.clone());
    let auto = Solver::new()
        .solve(&problem)
        .expect("MinBusy always dispatches");
    let forced_ff = Solver::builder()
        .force_algorithm(Algorithm::FirstFit)
        .build()
        .solve(&problem)
        .expect("FirstFit applies to any instance");
    for solution in [&auto, &forced_ff] {
        solution
            .schedule
            .validate_complete(&instance)
            .expect("valid schedule");
    }

    println!(
        "theoretical minimum bill (Observation 2.1 lower bound): {} machine-minutes\n",
        auto.bounds.lower
    );
    println!("MinBusy — total machine-on time under different schedulers:");
    let naive_bill = auto.bounds.length.ticks(); // one task per machine
    report("one task per machine", naive_bill, naive_bill);
    report(
        "FirstFit [13] (forced)",
        naive_bill,
        forced_ff.objective.cost().ticks(),
    );
    report(
        &format!("auto dispatch ({})", auto.algorithm),
        naive_bill,
        auto.objective.cost().ticks(),
    );
    println!(
        "  dispatch trace: {}",
        auto.trace_report().replace('\n', "; ")
    );

    // Budget question: the client only wants to spend 60% of the FirstFit bill.
    let budget = Duration::new(forced_ff.objective.cost().ticks() * 6 / 10);
    let budgeted = Solver::new()
        .solve(&Problem::max_throughput(instance.clone(), budget))
        .expect("MaxThroughput always dispatches");
    budgeted
        .schedule
        .validate_budgeted(&instance, budget)
        .expect("budget respected");
    println!(
        "\nMaxThroughput — with a budget of {} machine-minutes (60% of the FirstFit bill):",
        budget
    );
    println!(
        "  {} of {} tasks can be served via {} (busy time used: {})",
        budgeted.schedule.throughput(),
        instance.len(),
        budgeted.algorithm,
        budgeted.objective.cost()
    );
}
