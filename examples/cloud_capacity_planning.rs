//! Cloud capacity planning: clients rent identical machines that can each host `g`
//! concurrent tasks and pay for the total time machines are switched on (Section 1 of
//! the paper, cloud-computing motivation).
//!
//! The example generates a synthetic request trace, compares the busy time (≈ the bill)
//! achieved by the library's algorithms against the naive one-machine-per-task policy,
//! and then answers the reverse question: with a fixed budget, how many tasks can be
//! served (MaxThroughput)?
//!
//! Run with `cargo run -p busytime-bench --example cloud_capacity_planning --release`.

use busytime::bounds::{length_bound, lower_bound};
use busytime::maxthroughput::greedy_fallback;
use busytime::minbusy::{first_fit, greedy_pack, naive, solve_auto};
use busytime::{Duration, Instance};
use busytime_workload::cloud_trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn report(label: &str, instance: &Instance, cost: Duration) {
    let bill = cost.ticks();
    let naive_bill = length_bound(instance).ticks();
    println!(
        "  {label:<28} bill = {bill:>8} machine-minutes   ({:>5.1}% of the naive bill)",
        100.0 * bill as f64 / naive_bill as f64
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 400 tasks, machines host up to 8 concurrent tasks, mean inter-arrival 3 minutes,
    // task durations between 5 minutes and 8 hours (log-uniform).
    let instance = cloud_trace(&mut rng, 400, 8, 3, 5, 480);
    println!(
        "cloud trace: {} tasks over ~{} minutes, capacity g = {}",
        instance.len(),
        instance.span(),
        instance.capacity()
    );
    println!(
        "theoretical minimum bill (Observation 2.1 lower bound): {} machine-minutes\n",
        lower_bound(&instance)
    );

    println!("MinBusy — total machine-on time under different schedulers:");
    let n = naive(&instance);
    report("one task per machine", &instance, n.cost(&instance));
    let packed = greedy_pack(&instance);
    report("blind packing (Prop 2.1)", &instance, packed.cost(&instance));
    let ff = first_fit(&instance);
    report("FirstFit [13]", &instance, ff.cost(&instance));
    let (auto, algo) = solve_auto(&instance);
    report(
        &format!("auto dispatch ({algo:?})"),
        &instance,
        auto.cost(&instance),
    );
    for schedule in [&n, &packed, &ff, &auto] {
        schedule.validate_complete(&instance).expect("valid schedule");
    }

    // Budget question: the client only wants to spend 60% of the FirstFit bill.
    let budget = Duration::new(ff.cost(&instance).ticks() * 6 / 10);
    let budgeted = greedy_fallback(&instance, budget);
    budgeted
        .schedule
        .validate_budgeted(&instance, budget)
        .expect("budget respected");
    println!(
        "\nMaxThroughput — with a budget of {} machine-minutes ({}% of the FirstFit bill):",
        budget,
        60
    );
    println!(
        "  {} of {} tasks can be served (busy time used: {})",
        budgeted.throughput,
        instance.len(),
        budgeted.cost
    );
}
