//! Quickstart: build a small instance, solve MinBusy and MaxThroughput through the
//! unified `Solver` facade, inspect the solutions and their dispatch traces.
//!
//! Run with `cargo run -p busytime-bench --example quickstart`.

use busytime::analysis::ScheduleSummary;
use busytime::{Duration, Instance, Problem, Solver};

fn main() {
    // Eight jobs given as (start, completion) tick pairs — think of ticks as minutes.
    // Every machine can run at most g = 3 jobs at a time.
    let instance = Instance::from_ticks(
        &[
            (0, 90),
            (10, 100),
            (20, 110),
            (30, 120),
            (40, 130),
            (200, 260),
            (210, 280),
            (215, 275),
        ],
        3,
    );

    println!(
        "instance: {} jobs, capacity g = {}",
        instance.len(),
        instance.capacity()
    );
    println!(
        "classification: clique = {}, proper = {}, one-sided = {}, connected = {}",
        instance.is_clique(),
        instance.is_proper(),
        instance.is_one_sided(),
        instance.classification().connected
    );

    let solver = Solver::new();

    // ---- MinBusy: schedule every job with minimum total busy time. -------------------
    let solution = solver
        .solve(&Problem::min_busy(instance.clone()))
        .expect("the default policy always solves MinBusy");
    solution
        .schedule
        .validate_complete(&instance)
        .expect("facade solutions are valid complete schedules");
    println!(
        "\nMinBusy via {} (exact: {}, guarantee: {:?}):",
        solution.algorithm,
        solution.is_exact(),
        solution.guarantee
    );
    println!(
        "  bounds (Observation 2.1): lower {} (parallelism {}, span {}), upper {}",
        solution.bounds.lower,
        solution.bounds.parallelism,
        solution.bounds.span,
        solution.bounds.length
    );
    println!("  {}", ScheduleSummary::new(&instance, &solution.schedule));
    for (machine, jobs) in solution.schedule.machine_groups().iter().enumerate() {
        let intervals: Vec<String> = jobs.iter().map(|&j| instance.job(j).to_string()).collect();
        println!(
            "  machine {machine}: jobs {jobs:?} -> {}",
            intervals.join(", ")
        );
    }
    println!("  dispatch trace:");
    for attempt in &solution.trace {
        println!("    {attempt}");
    }

    // ---- MaxThroughput: a busy-time budget of 150 ticks. ------------------------------
    let budget = Duration::new(150);
    let budgeted = solver
        .solve(&Problem::max_throughput(instance.clone(), budget))
        .expect("the default policy always solves MaxThroughput");
    budgeted
        .schedule
        .validate_budgeted(&instance, budget)
        .expect("budgeted schedules never exceed the budget");
    println!(
        "\nMaxThroughput via {} with budget {budget}:",
        budgeted.algorithm
    );
    println!(
        "  scheduled {} of {} jobs using busy time {}",
        budgeted.schedule.throughput(),
        instance.len(),
        budgeted.objective.cost()
    );
    let skipped: Vec<usize> = (0..instance.len())
        .filter(|&j| !budgeted.schedule.is_scheduled(j))
        .collect();
    println!("  skipped jobs: {skipped:?}");

    // ---- Policies: the same instance under an exact-only solver. ----------------------
    let exact_only = Solver::builder().require_exact(true).build();
    match exact_only.solve(&Problem::min_busy(instance)) {
        Ok(exact) => println!("\nexact-only policy solved via {}", exact.algorithm),
        Err(e) => println!("\nexact-only policy refused: {e}"),
    }
}
