//! Quickstart: build a small instance, solve MinBusy and MaxThroughput, inspect the
//! schedules.
//!
//! Run with `cargo run -p busytime-bench --example quickstart`.

use busytime::analysis::ScheduleSummary;
use busytime::{maxthroughput, minbusy, Duration, Instance};

fn main() {
    // Eight jobs given as (start, completion) tick pairs — think of ticks as minutes.
    // Every machine can run at most g = 3 jobs at a time.
    let instance = Instance::from_ticks(
        &[
            (0, 90),
            (10, 100),
            (20, 110),
            (30, 120),
            (40, 130),
            (200, 260),
            (210, 280),
            (215, 275),
        ],
        3,
    );

    println!("instance: {} jobs, capacity g = {}", instance.len(), instance.capacity());
    println!(
        "classification: clique = {}, proper = {}, one-sided = {}, connected = {}",
        instance.is_clique(),
        instance.is_proper(),
        instance.is_one_sided(),
        instance.classification().connected
    );
    println!(
        "lower bound (Observation 2.1): {}   naive upper bound: {}",
        instance.lower_bound(),
        instance.total_len()
    );

    // ---- MinBusy: schedule every job with minimum total busy time. -------------------
    let (schedule, algorithm) = minbusy::solve_auto(&instance);
    schedule
        .validate_complete(&instance)
        .expect("solve_auto always returns a valid complete schedule");
    println!("\nMinBusy via {algorithm:?}:");
    println!("  {}", ScheduleSummary::new(&instance, &schedule));
    for (machine, jobs) in schedule.machine_groups().iter().enumerate() {
        let intervals: Vec<String> = jobs.iter().map(|&j| instance.job(j).to_string()).collect();
        println!("  machine {machine}: jobs {jobs:?} -> {}", intervals.join(", "));
    }

    // ---- MaxThroughput: a busy-time budget of 150 ticks. ------------------------------
    let budget = Duration::new(150);
    let (result, algorithm) = maxthroughput::solve_auto(&instance, budget);
    result
        .schedule
        .validate_budgeted(&instance, budget)
        .expect("budgeted schedules never exceed the budget");
    println!("\nMaxThroughput via {algorithm:?} with budget {budget}:");
    println!(
        "  scheduled {} of {} jobs using busy time {}",
        result.throughput,
        instance.len(),
        result.cost
    );
    let skipped: Vec<usize> = (0..instance.len())
        .filter(|&j| !result.schedule.is_scheduled(j))
        .collect();
    println!("  skipped jobs: {skipped:?}");
}
